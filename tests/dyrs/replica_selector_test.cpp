#include "core/replica_selector.h"

#include <gtest/gtest.h>

#include <map>

#include "common/check.h"
#include "common/random.h"

namespace dyrs::core {
namespace {

constexpr Bytes kBlock = mib(256);

PendingMigration make_block(std::int64_t id, std::vector<NodeId> replicas,
                            Bytes size = kBlock) {
  PendingMigration pm;
  pm.block = BlockId(id);
  pm.size = size;
  pm.replicas = std::move(replicas);
  pm.jobs[JobId(1)] = EvictionMode::Implicit;
  return pm;
}

std::vector<PendingMigration*> ptrs(std::vector<PendingMigration>& v) {
  std::vector<PendingMigration*> out;
  for (auto& pm : v) out.push_back(&pm);
  return out;
}

// sec_per_byte for a given per-block time.
double spb(double sec_per_block) { return sec_per_block / static_cast<double>(kBlock); }

TEST(ReplicaSelector, PrefersFasterNode) {
  std::vector<PendingMigration> pending = {
      make_block(0, {NodeId(0), NodeId(1)}),
  };
  std::vector<SlaveSnapshot> slaves = {
      {.node = NodeId(0), .sec_per_byte = spb(8.0), .queued_bytes = 0},
      {.node = NodeId(1), .sec_per_byte = spb(1.6), .queued_bytes = 0},
  };
  auto p = ptrs(pending);
  auto stats = assign_targets(p, slaves);
  EXPECT_EQ(stats.assigned, 1u);
  EXPECT_EQ(pending[0].target, NodeId(1));
}

TEST(ReplicaSelector, AccountsForQueuedWork) {
  // Fast node with a deep queue loses to a moderately slow empty node.
  std::vector<PendingMigration> pending = {
      make_block(0, {NodeId(0), NodeId(1)}),
  };
  std::vector<SlaveSnapshot> slaves = {
      {.node = NodeId(0), .sec_per_byte = spb(1.6), .queued_bytes = 10 * kBlock},
      {.node = NodeId(1), .sec_per_byte = spb(3.0), .queued_bytes = 0},
  };
  auto p = ptrs(pending);
  assign_targets(p, slaves);
  // Node 0 finish: (10+1)*1.6 = 17.6s; node 1: 3.0s.
  EXPECT_EQ(pending[0].target, NodeId(1));
}

TEST(ReplicaSelector, GreedySpreadsAcrossEqualNodes) {
  std::vector<PendingMigration> pending;
  for (int i = 0; i < 12; ++i) {
    pending.push_back(make_block(i, {NodeId(0), NodeId(1), NodeId(2)}));
  }
  std::vector<SlaveSnapshot> slaves = {
      {.node = NodeId(0), .sec_per_byte = spb(1.6), .queued_bytes = 0},
      {.node = NodeId(1), .sec_per_byte = spb(1.6), .queued_bytes = 0},
      {.node = NodeId(2), .sec_per_byte = spb(1.6), .queued_bytes = 0},
  };
  auto p = ptrs(pending);
  assign_targets(p, slaves);
  std::map<NodeId, int> counts;
  for (const auto& pm : pending) ++counts[pm.target];
  EXPECT_EQ(counts[NodeId(0)], 4);
  EXPECT_EQ(counts[NodeId(1)], 4);
  EXPECT_EQ(counts[NodeId(2)], 4);
}

TEST(ReplicaSelector, LoadProportionalToBandwidth) {
  // Node 1 is 4x slower: it should receive roughly 1/5 of the blocks when
  // every block has replicas on both nodes.
  std::vector<PendingMigration> pending;
  for (int i = 0; i < 100; ++i) {
    pending.push_back(make_block(i, {NodeId(0), NodeId(1)}));
  }
  std::vector<SlaveSnapshot> slaves = {
      {.node = NodeId(0), .sec_per_byte = spb(1.6), .queued_bytes = 0},
      {.node = NodeId(1), .sec_per_byte = spb(6.4), .queued_bytes = 0},
  };
  auto p = ptrs(pending);
  assign_targets(p, slaves);
  std::map<NodeId, int> counts;
  for (const auto& pm : pending) ++counts[pm.target];
  EXPECT_NEAR(counts[NodeId(0)], 80, 2);
  EXPECT_NEAR(counts[NodeId(1)], 20, 2);
}

TEST(ReplicaSelector, RespectsReplicaLocations) {
  // Fastest node is not a replica holder; targeting must ignore it.
  std::vector<PendingMigration> pending = {
      make_block(0, {NodeId(1), NodeId(2)}),
  };
  std::vector<SlaveSnapshot> slaves = {
      {.node = NodeId(0), .sec_per_byte = spb(0.1), .queued_bytes = 0},
      {.node = NodeId(1), .sec_per_byte = spb(2.0), .queued_bytes = 0},
      {.node = NodeId(2), .sec_per_byte = spb(3.0), .queued_bytes = 0},
  };
  auto p = ptrs(pending);
  assign_targets(p, slaves);
  EXPECT_EQ(pending[0].target, NodeId(1));
}

TEST(ReplicaSelector, UntargetableWhenNoReplicaReports) {
  std::vector<PendingMigration> pending = {
      make_block(0, {NodeId(5), NodeId(6)}),
  };
  std::vector<SlaveSnapshot> slaves = {
      {.node = NodeId(0), .sec_per_byte = spb(1.0), .queued_bytes = 0},
  };
  auto p = ptrs(pending);
  auto stats = assign_targets(p, slaves);
  EXPECT_EQ(stats.assigned, 0u);
  EXPECT_EQ(stats.untargetable, 1u);
  EXPECT_FALSE(pending[0].target.valid());
}

TEST(ReplicaSelector, StragglerAvoidance) {
  // The paper's motivating example (§III-A2): with few blocks left, a slow
  // node should stay idle rather than take one of the last migrations.
  std::vector<PendingMigration> pending = {
      make_block(0, {NodeId(0), NodeId(1)}),
      make_block(1, {NodeId(0), NodeId(1)}),
      make_block(2, {NodeId(0), NodeId(1)}),
  };
  std::vector<SlaveSnapshot> slaves = {
      {.node = NodeId(0), .sec_per_byte = spb(1.0), .queued_bytes = 0},   // fast
      {.node = NodeId(1), .sec_per_byte = spb(10.0), .queued_bytes = 0},  // slow
  };
  auto p = ptrs(pending);
  assign_targets(p, slaves);
  // Fast node serially does 3 blocks in 3s; slow node would need 10s for
  // one. Everything targets the fast node.
  for (const auto& pm : pending) EXPECT_EQ(pm.target, NodeId(0));
}

TEST(ReplicaSelector, MixedBlockSizesUseBytes) {
  // A small block tips to the slow-but-idle node only when its byte count
  // makes that finish earlier.
  std::vector<PendingMigration> pending = {
      make_block(0, {NodeId(0), NodeId(1)}, mib(256)),
      make_block(1, {NodeId(0), NodeId(1)}, mib(16)),
  };
  std::vector<SlaveSnapshot> slaves = {
      {.node = NodeId(0), .sec_per_byte = spb(1.0), .queued_bytes = 0},
      {.node = NodeId(1), .sec_per_byte = spb(4.0), .queued_bytes = 0},
  };
  auto p = ptrs(pending);
  assign_targets(p, slaves);
  EXPECT_EQ(pending[0].target, NodeId(0));
  // Block 1 on node 0: 1.0 + 1.0*(16/256) = 1.0625s; on node 1: 0.25s.
  EXPECT_EQ(pending[1].target, NodeId(1));
}

TEST(ReplicaSelector, NonPositiveRateThrows) {
  std::vector<PendingMigration> pending = {make_block(0, {NodeId(0)})};
  std::vector<SlaveSnapshot> slaves = {
      {.node = NodeId(0), .sec_per_byte = 0.0, .queued_bytes = 0}};
  auto p = ptrs(pending);
  EXPECT_THROW(assign_targets(p, slaves), CheckError);
}

// Property: the greedy assignment never produces a makespan worse than
// binding every block to one node (sanity bound), across random instances.
class SelectorPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(SelectorPropertyTest, MakespanNeverWorseThanSingleNode) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const int nodes = static_cast<int>(rng.uniform_int(2, 7));
  const int blocks = static_cast<int>(rng.uniform_int(1, 60));
  std::vector<SlaveSnapshot> slaves;
  for (int n = 0; n < nodes; ++n) {
    // Zero preloads: with pre-queued work, a node's *existing* backlog can
    // dominate the makespan regardless of this batch's assignment, so the
    // bound below only holds for the pure batch. Preload awareness is
    // covered by AccountsForQueuedWork.
    slaves.push_back({.node = NodeId(n),
                      .sec_per_byte = spb(rng.uniform(0.5, 10.0)),
                      .queued_bytes = 0});
  }
  std::vector<PendingMigration> pending;
  for (int b = 0; b < blocks; ++b) {
    // Every block replicated on all nodes so any assignment is feasible.
    std::vector<NodeId> replicas;
    for (int n = 0; n < nodes; ++n) replicas.push_back(NodeId(n));
    pending.push_back(make_block(b, replicas));
  }
  auto p = ptrs(pending);
  auto stats = assign_targets(p, slaves);
  EXPECT_EQ(stats.assigned, static_cast<std::size_t>(blocks));

  // Compute resulting makespan.
  std::map<NodeId, double> load;
  for (const auto& s : slaves)
    load[s.node] = s.sec_per_byte * static_cast<double>(s.queued_bytes);
  std::map<NodeId, double> rate;
  for (const auto& s : slaves) rate[s.node] = s.sec_per_byte;
  double makespan = 0;
  for (const auto& pm : pending) {
    load[pm.target] += rate[pm.target] * static_cast<double>(pm.size);
  }
  for (const auto& [node, l] : load) makespan = std::max(makespan, l);

  // Baseline: dump everything on the single best node.
  double best_single = 1e300;
  for (const auto& s : slaves) {
    double l = s.sec_per_byte * static_cast<double>(s.queued_bytes);
    for (const auto& pm : pending) l += s.sec_per_byte * static_cast<double>(pm.size);
    best_single = std::min(best_single, l);
  }
  EXPECT_LE(makespan, best_single + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, SelectorPropertyTest, ::testing::Range(1, 21));

}  // namespace
}  // namespace dyrs::core
