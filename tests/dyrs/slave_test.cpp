#include "dyrs/slave.h"

#include <gtest/gtest.h>

#include "testing/fixture.h"

namespace dyrs::core {
namespace {

using dyrs::testing::MiniDfs;

std::map<JobId, EvictionMode> one_job(int id = 1,
                                      EvictionMode mode = EvictionMode::Implicit) {
  return {{JobId(id), mode}};
}

struct SlaveFixture : ::testing::Test {
  SlaveFixture()
      : dfs({.num_nodes = 3,
             .disk_bw = mib_per_sec(64),
             .seek_alpha = 0.0,
             .replication = 3,
             .block_size = mib(64)}) {
    file = &dfs.namenode->create_file("/input", mib(64) * 12);
    MigrationSlave::Callbacks cb;
    cb.on_complete = [this](const MigrationRecord& r) { completed.push_back(r); };
    cb.on_evicted = [this](NodeId, const std::vector<BlockId>& blocks) {
      for (BlockId b : blocks) evicted.push_back(b);
    };
    SlaveConfig config;
    config.heartbeat_interval = seconds(1);
    config.reference_block = mib(64);
    slave = std::make_unique<MigrationSlave>(dfs.sim, *dfs.datanodes[0], config, cb);
    heartbeat = dfs.sim.every(seconds(1), [this]() { slave->heartbeat(); });
  }

  ~SlaveFixture() override { heartbeat.cancel(); }

  BoundMigration bound(BlockId block, int job = 1,
                       EvictionMode mode = EvictionMode::Implicit) {
    BoundMigration m;
    m.block = block;
    m.size = dfs.namenode->ns().block(block).size;
    m.jobs = {{JobId(job), mode}};
    m.bound_at = dfs.sim.now();
    return m;
  }

  MiniDfs dfs;
  const dfs::FileMeta* file = nullptr;
  std::unique_ptr<MigrationSlave> slave;
  std::vector<MigrationRecord> completed;
  std::vector<BlockId> evicted;
  sim::EventHandle heartbeat;
};

TEST_F(SlaveFixture, MigratesOneBlockAtDiskRate) {
  slave->enqueue(bound(file->blocks[0]));
  dfs.sim.run_until(seconds(5));
  ASSERT_EQ(completed.size(), 1u);
  // 64MiB at 64MiB/s = 1s.
  EXPECT_NEAR(to_seconds(completed[0].finished_at - completed[0].started_at), 1.0, 0.01);
  EXPECT_TRUE(slave->buffers().contains(file->blocks[0]));
  EXPECT_EQ(slave->migrations_completed(), 1);
}

TEST_F(SlaveFixture, SerializesMigrations) {
  slave->enqueue(bound(file->blocks[0]));
  slave->enqueue(bound(file->blocks[1]));
  slave->enqueue(bound(file->blocks[2]));
  EXPECT_EQ(slave->in_flight_count(), 1);
  EXPECT_EQ(slave->queued_count(), 2);
  dfs.sim.run_until(seconds(10));
  ASSERT_EQ(completed.size(), 3u);
  // Back-to-back: completions at 1s, 2s, 3s.
  EXPECT_NEAR(to_seconds(completed[0].finished_at), 1.0, 0.01);
  EXPECT_NEAR(to_seconds(completed[1].finished_at), 2.0, 0.01);
  EXPECT_NEAR(to_seconds(completed[2].finished_at), 3.0, 0.01);
}

TEST_F(SlaveFixture, ConcurrentModeRunsAllAtOnce) {
  SlaveConfig config;
  config.serialize_migrations = false;
  config.reference_block = mib(64);
  MigrationSlave ignem(dfs.sim, *dfs.datanodes[1], config, {});
  // Blocks are replicated on all 3 nodes, so datanode 1 hosts them too.
  for (int i = 0; i < 3; ++i) {
    BoundMigration m = bound(file->blocks[static_cast<std::size_t>(i)]);
    ignem.enqueue(std::move(m));
  }
  EXPECT_EQ(ignem.in_flight_count(), 3);
  EXPECT_EQ(ignem.queued_count(), 0);
}

TEST_F(SlaveFixture, QueueCapacityFromHeartbeatAndBlockTime) {
  // 64MiB block at 64MiB/s = 1s; heartbeat 1s -> depth ceil(1/1)=1.
  EXPECT_EQ(slave->queue_capacity(), 1);
  // A 4x faster disk fits 4 block-reads per heartbeat.
  SlaveConfig config;
  config.reference_block = mib(64);
  MiniDfs fast({.num_nodes = 1,
                .disk_bw = mib_per_sec(256),
                .seek_alpha = 0.0,
                .replication = 1,
                .block_size = mib(64)});
  MigrationSlave s(fast.sim, *fast.datanodes[0], config, {});
  EXPECT_EQ(s.queue_capacity(), 4);
}

TEST_F(SlaveFixture, FreeSlotsShrinkWithQueue) {
  SlaveConfig config;
  config.reference_block = mib(64);
  config.queue_depth.extra_depth = 2;  // capacity 3
  MigrationSlave s(dfs.sim, *dfs.datanodes[1], config, {});
  EXPECT_EQ(s.free_slots(), 3);
  s.enqueue(bound(file->blocks[0]));  // starts immediately -> in flight
  EXPECT_EQ(s.free_slots(), 3);
  s.enqueue(bound(file->blocks[1]));
  s.enqueue(bound(file->blocks[2]));
  EXPECT_EQ(s.free_slots(), 1);
}

TEST_F(SlaveFixture, EstimatorLearnsFromMigrations) {
  for (int i = 0; i < 4; ++i) slave->enqueue(bound(file->blocks[static_cast<std::size_t>(i)]));
  dfs.sim.run_until(seconds(10));
  EXPECT_NEAR(slave->estimator().seconds_per_block(), 1.0, 0.05);
}

TEST_F(SlaveFixture, OverdueCorrectionReactsBeforeCompletion) {
  // Learn the fast estimate, then hit the disk with interference and watch
  // the estimate climb while the migration is still in flight.
  slave->enqueue(bound(file->blocks[0]));
  dfs.sim.run_until(seconds(3));
  ASSERT_EQ(completed.size(), 1u);
  const double before = slave->estimator().seconds_per_block();

  auto& disk = dfs.cluster->node(NodeId(0)).disk();
  for (int i = 0; i < 7; ++i) disk.start_interference();
  slave->enqueue(bound(file->blocks[1], 2));
  dfs.sim.run_until(seconds(8));  // several heartbeats, migration still slow
  EXPECT_EQ(completed.size(), 1u) << "migration should still be in flight";
  EXPECT_GT(slave->estimator().seconds_per_block(), before * 1.5);
}

TEST_F(SlaveFixture, CancelQueuedMigration) {
  slave->enqueue(bound(file->blocks[0]));
  slave->enqueue(bound(file->blocks[1]));
  EXPECT_TRUE(slave->cancel_block(file->blocks[1]));
  dfs.sim.run_until(seconds(5));
  EXPECT_EQ(completed.size(), 1u);
  EXPECT_FALSE(slave->buffers().contains(file->blocks[1]));
}

TEST_F(SlaveFixture, CancelActiveMigrationFreesMemoryAndStartsNext) {
  slave->enqueue(bound(file->blocks[0]));
  slave->enqueue(bound(file->blocks[1]));
  dfs.sim.run_until(milliseconds(500));
  EXPECT_TRUE(slave->cancel_block(file->blocks[0]));
  EXPECT_EQ(slave->in_flight_count(), 1);  // next started
  dfs.sim.run_until(seconds(5));
  ASSERT_EQ(completed.size(), 1u);
  EXPECT_EQ(completed[0].block, file->blocks[1]);
  EXPECT_FALSE(slave->buffers().contains(file->blocks[0]));
  // Cancelled at 0.5s, block 1 takes 1s -> done at 1.5s.
  EXPECT_NEAR(to_seconds(completed[0].finished_at), 1.5, 0.01);
}

TEST_F(SlaveFixture, CancelUnknownBlockReturnsFalse) {
  EXPECT_FALSE(slave->cancel_block(BlockId(999)));
}

TEST_F(SlaveFixture, CancelForJobKeepsSharedMigration) {
  BoundMigration m = bound(file->blocks[0], 1);
  m.jobs[JobId(2)] = EvictionMode::Implicit;
  slave->enqueue(std::move(m));
  EXPECT_FALSE(slave->cancel_for_job(file->blocks[0], JobId(1)));
  dfs.sim.run_until(seconds(3));
  EXPECT_EQ(completed.size(), 1u);  // job 2 still wanted it
}

TEST_F(SlaveFixture, CancelForJobLastReferenceCancels) {
  slave->enqueue(bound(file->blocks[0], 1));
  EXPECT_TRUE(slave->cancel_for_job(file->blocks[0], JobId(1)));
  dfs.sim.run_until(seconds(3));
  EXPECT_TRUE(completed.empty());
}

TEST_F(SlaveFixture, MemoryLimitStallsQueueUntilEviction) {
  SlaveConfig config;
  config.reference_block = mib(64);
  config.memory_limit = mib(64);  // fits exactly one block
  std::vector<MigrationRecord> done;
  MigrationSlave::Callbacks cb;
  cb.on_complete = [&](const MigrationRecord& r) { done.push_back(r); };
  MigrationSlave s(dfs.sim, *dfs.datanodes[1], config, cb);
  s.enqueue(bound(file->blocks[0], 1, EvictionMode::Explicit));
  s.enqueue(bound(file->blocks[1], 2, EvictionMode::Explicit));
  dfs.sim.run_until(seconds(5));
  EXPECT_EQ(done.size(), 1u);
  EXPECT_TRUE(s.stalled());
  // Evicting job 1's block frees space; the queued migration proceeds.
  s.release_job(JobId(1));
  dfs.sim.run_until(seconds(10));
  EXPECT_EQ(done.size(), 2u);
  EXPECT_FALSE(s.stalled());
}

TEST_F(SlaveFixture, EnqueueForBufferedBlockJustAddsRefs) {
  slave->enqueue(bound(file->blocks[0], 1, EvictionMode::Explicit));
  dfs.sim.run_until(seconds(3));
  ASSERT_EQ(completed.size(), 1u);
  slave->enqueue(bound(file->blocks[0], 2, EvictionMode::Explicit));
  dfs.sim.run_until(seconds(6));
  EXPECT_EQ(completed.size(), 1u);  // no second migration
  slave->release_job(JobId(1));
  EXPECT_TRUE(slave->buffers().contains(file->blocks[0]));
  slave->release_job(JobId(2));
  EXPECT_FALSE(slave->buffers().contains(file->blocks[0]));
}

TEST_F(SlaveFixture, ImplicitEvictionViaOnBlockRead) {
  slave->enqueue(bound(file->blocks[0], 1, EvictionMode::Implicit));
  dfs.sim.run_until(seconds(3));
  slave->on_block_read(file->blocks[0], JobId(1));
  EXPECT_FALSE(slave->buffers().contains(file->blocks[0]));
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0], file->blocks[0]);
}

TEST_F(SlaveFixture, ScavengeOnHeartbeatUnderPressure) {
  SlaveConfig config;
  config.reference_block = mib(64);
  config.memory_limit = mib(128);
  config.scavenge_threshold = 0.5;
  std::vector<BlockId> gone;
  MigrationSlave::Callbacks cb;
  cb.on_evicted = [&](NodeId, const std::vector<BlockId>& blocks) {
    gone.insert(gone.end(), blocks.begin(), blocks.end());
  };
  MigrationSlave s(dfs.sim, *dfs.datanodes[1], config, cb);
  s.job_active_query = [](JobId) { return false; };  // every job is dead
  s.enqueue(bound(file->blocks[0], 7, EvictionMode::Explicit));
  dfs.sim.run_until(seconds(2));
  ASSERT_TRUE(s.buffers().contains(file->blocks[0]) || !gone.empty());
  s.heartbeat();  // over threshold (64/128 = 0.5) -> scavenges dead job 7
  EXPECT_FALSE(s.buffers().contains(file->blocks[0]));
  ASSERT_EQ(gone.size(), 1u);
}

TEST_F(SlaveFixture, CrashDropsEverything) {
  slave->enqueue(bound(file->blocks[0]));
  slave->enqueue(bound(file->blocks[1]));
  dfs.sim.run_until(milliseconds(500));
  auto report = slave->crash();
  EXPECT_TRUE(report.buffered.empty());  // nothing had completed yet
  EXPECT_EQ(report.lost.size(), 2u);     // both migrations died with the process
  EXPECT_EQ(slave->in_flight_count(), 0);
  EXPECT_EQ(slave->queued_count(), 0);
  dfs.sim.run_until(seconds(5));
  EXPECT_TRUE(completed.empty());
  EXPECT_EQ(dfs.cluster->node(NodeId(0)).memory().pinned(), 0);
}

TEST_F(SlaveFixture, CrashReportsBufferedBlocks) {
  slave->enqueue(bound(file->blocks[0]));
  dfs.sim.run_until(seconds(3));
  ASSERT_EQ(completed.size(), 1u);
  auto report = slave->crash();
  ASSERT_EQ(report.buffered.size(), 1u);
  EXPECT_EQ(report.buffered[0], file->blocks[0]);
  EXPECT_TRUE(report.lost.empty());  // the migration had already completed
  EXPECT_EQ(dfs.cluster->node(NodeId(0)).memory().pinned(), 0);
}

TEST_F(SlaveFixture, EnqueueNonLocalBlockThrows) {
  MiniDfs other({.num_nodes = 4, .replication = 1});
  const auto& f = other.namenode->create_file("/x", mib(64));
  // Find a datanode that does NOT host the block.
  const auto locs = other.namenode->block_locations(f.blocks[0]);
  dfs::DataNode* outsider = nullptr;
  for (auto& dn : other.datanodes) {
    if (dn->id() != locs[0]) outsider = dn.get();
  }
  ASSERT_NE(outsider, nullptr);
  MigrationSlave s(other.sim, *outsider, {}, {});
  BoundMigration m;
  m.block = f.blocks[0];
  m.size = mib(64);
  m.jobs = one_job();
  EXPECT_THROW(s.enqueue(std::move(m)), CheckError);
}

}  // namespace
}  // namespace dyrs::core
