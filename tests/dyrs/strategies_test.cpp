#include "dyrs/strategies.h"

#include <gtest/gtest.h>

#include "testing/fixture.h"

namespace dyrs::core {
namespace {

using dyrs::testing::MiniDfs;

TEST(Strategies, DyrsConfiguration) {
  MiniDfs t;
  auto master = make_dyrs(*t.cluster, *t.namenode);
  EXPECT_EQ(master->name(), "DYRS");
  EXPECT_EQ(master->config().binding, MasterConfig::Binding::LateTargeted);
  EXPECT_TRUE(master->config().cancel_missed_reads);
  EXPECT_TRUE(master->config().slave.serialize_migrations);
  EXPECT_TRUE(master->config().slave.overdue_correction);
}

TEST(Strategies, IgnemConfiguration) {
  MiniDfs t;
  auto master = make_ignem(*t.cluster, *t.namenode);
  EXPECT_EQ(master->name(), "Ignem");
  EXPECT_EQ(master->config().binding, MasterConfig::Binding::EagerRandom);
  EXPECT_FALSE(master->config().cancel_missed_reads);
  EXPECT_FALSE(master->config().slave.serialize_migrations);
  EXPECT_GT(master->config().slave.max_concurrent_migrations, 0);
  EXPECT_FALSE(master->config().slave.overdue_correction);
}

TEST(Strategies, NaiveConfiguration) {
  MiniDfs t;
  auto master = make_naive_balancer(*t.cluster, *t.namenode);
  EXPECT_EQ(master->name(), "NaiveBalancer");
  EXPECT_EQ(master->config().binding, MasterConfig::Binding::LateAnyReplica);
}

TEST(Strategies, FactoryOverridesPreserveOtherKnobs) {
  MiniDfs t;
  MasterConfig config;
  config.retarget_interval = milliseconds(100);
  config.slave.heartbeat_interval = milliseconds(500);
  auto master = make_dyrs(*t.cluster, *t.namenode, config);
  EXPECT_EQ(master->config().retarget_interval, milliseconds(100));
  EXPECT_EQ(master->config().slave.heartbeat_interval, milliseconds(500));
}

TEST(Strategies, NoMigrationIsInert) {
  auto none = make_no_migration();
  EXPECT_EQ(none->name(), "HDFS");
  // All entry points are harmless no-ops.
  none->migrate_files(JobId(1), {"/x"}, EvictionMode::Implicit);
  none->migrate_blocks(JobId(1), {BlockId(0)}, EvictionMode::Implicit);
  none->evict_job(JobId(1));
  none->on_job_finished(JobId(1));
  none->on_read_started(BlockId(0), JobId(1));
  none->on_blocks_deleted({BlockId(0)});
}

TEST(Strategies, IgnemConcurrencyCapHonored) {
  MiniDfs t({.num_nodes = 3,
             .disk_bw = mib_per_sec(64),
             .seek_alpha = 0.0,
             .replication = 3,
             .block_size = mib(64)});
  auto master = make_ignem(*t.cluster, *t.namenode);
  t.namenode->create_file("/in", mib(64) * 30);
  master->migrate_files(JobId(1), {"/in"}, EvictionMode::Explicit);
  const int cap = master->config().slave.max_concurrent_migrations;
  for (NodeId id : t.cluster->node_ids()) {
    EXPECT_LE(master->slave(id).in_flight_count(), cap) << "node " << id;
  }
  t.sim.run_until(minutes(5));
  EXPECT_EQ(master->migrations_completed(), 30);
}

}  // namespace
}  // namespace dyrs::core
