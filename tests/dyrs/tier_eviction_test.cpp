// End-to-end tier eviction on the sim backend: a master-driven run under
// memory pressure must demote cold blocks downward (memory -> SSD -> disk),
// keep the namenode's memory-replica registry consistent with what each
// node can still serve, refresh the per-tier gauges, and leave an
// oracle-clean trace including the mig_demote events.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "dfs/placement.h"
#include "dyrs/master.h"
#include "dyrs/strategies.h"
#include "obs/metrics_registry.h"
#include "obs/trace.h"
#include "obs/trace_invariants.h"
#include "obs/trace_reader.h"
#include "testing/fixture.h"

namespace dyrs::core {
namespace {

constexpr Bytes kBlock = mib(2);

struct TierRun {
  testing::MiniDfs dfs;
  std::unique_ptr<MigrationMaster> master;
  obs::MetricsRegistry registry;
  obs::Tracer tracer;
  obs::MemorySink sink;

  TierRun(int num_blocks, Bytes memory_limit, Bytes ssd_capacity, TierPolicy tier)
      : dfs([&] {
          testing::MiniDfs::Options o;
          o.num_nodes = 1;  // all pressure lands on one node
          o.replication = 1;
          o.block_size = kBlock;
          o.ssd = ssd_capacity;
          o.placement = std::make_unique<dfs::RoundRobinPlacement>();
          return o;
        }()) {
    MasterConfig cfg;
    cfg.retarget_interval = minutes(10);
    cfg.slave.reference_block = kBlock;
    cfg.slave.memory_limit = memory_limit;
    cfg.tier = tier;
    master = make_dyrs(*dfs.cluster, *dfs.namenode, cfg);
    tracer.set_sink(&sink);
    master->set_observability(obs::ObsContext(&registry, &tracer));
    dfs.namenode->create_file("/tier/input", kBlock * num_blocks);
    master->migrate_files(JobId(1), {"/tier/input"}, EvictionMode::Explicit);
    dfs.sim.run_until(minutes(2));
  }

  MigrationSlave& slave() { return master->slave(NodeId(0)); }
};

TierPolicy evict_cold() {
  TierPolicy p;
  p.on_pressure = TierPolicy::OnPressure::EvictColdFirst;
  return p;
}

TEST(TierEviction, PressureDemotesToSsdAndKeepsBlocksBuffered) {
  // 8 blocks into a 2-block memory cap with a roomy SSD: six demotions,
  // every block still buffered (and registered) somewhere on the node.
  TierRun run(8, 2 * kBlock, gib(1), evict_cold());
  EXPECT_EQ(run.master->migrations_completed(), 8);
  EXPECT_EQ(run.slave().demotions(), 6);
  EXPECT_EQ(run.slave().buffers().buffered_count(), 8u);
  EXPECT_EQ(run.slave().buffers().used(), 2 * kBlock);
  EXPECT_EQ(run.slave().buffers().ssd_used(), 6 * kBlock);
  // Memory -> SSD keeps the replica served from the node: the registry
  // still lists all 8.
  EXPECT_EQ(run.dfs.namenode->memory_replica_count(), 8u);

  // Per-tier gauges and the demotion counter reflect the final state.
  EXPECT_EQ(run.registry.gauge("node0.tier.memory.used_bytes").value(),
            static_cast<double>(2 * kBlock));
  EXPECT_EQ(run.registry.gauge("node0.tier.ssd.used_bytes").value(),
            static_cast<double>(6 * kBlock));
  EXPECT_EQ(run.registry.counter("dyrs.migrations.demoted").value(), 6);

  // The trace carries the demote lifecycle events and stays oracle-clean.
  obs::TraceInvariants oracle;
  oracle.profile = obs::TraceInvariants::Profile::Sim;
  oracle.flag_open_lifecycles = false;  // job 1 still holds its references
  const auto report = oracle.check(obs::TraceReader(run.sink.events()));
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_EQ(report.demotions, 6u);
}

TEST(TierEviction, SsdOverflowEvictsToDiskAndUnregistersReplica) {
  // SSD fits a single block: the second demotion cascades, pushing the
  // coldest SSD block off the hierarchy. Its references drop, the slave
  // reports the eviction, and the master unregisters the memory replica.
  TierRun run(4, 2 * kBlock, kBlock, evict_cold());
  EXPECT_EQ(run.master->migrations_completed(), 4);
  auto& buffers = run.slave().buffers();
  EXPECT_EQ(buffers.buffered_count(), 3u);       // one block fell to disk
  EXPECT_FALSE(buffers.contains(BlockId(0)));    // the coldest one
  EXPECT_EQ(buffers.ssd_used(), kBlock);
  EXPECT_EQ(run.dfs.namenode->memory_replica_count(), 3u);
  for (const auto& [block, node] : run.dfs.namenode->memory_replica_entries()) {
    EXPECT_NE(block, BlockId(0));
  }

  obs::TraceInvariants oracle;
  oracle.profile = obs::TraceInvariants::Profile::Sim;
  oracle.flag_open_lifecycles = false;
  const auto report = oracle.check(obs::TraceReader(run.sink.events()));
  EXPECT_TRUE(report.ok()) << report.summary();
}

TEST(TierEviction, EvictJobReleasesAllTiersAndRegistry) {
  TierRun run(8, 2 * kBlock, gib(1), evict_cold());
  ASSERT_EQ(run.slave().buffers().ssd_used(), 6 * kBlock);
  run.master->evict_job(JobId(1));
  run.dfs.sim.run_until(minutes(3));
  EXPECT_EQ(run.slave().buffers().buffered_count(), 0u);
  EXPECT_EQ(run.slave().buffers().used(), 0);
  EXPECT_EQ(run.slave().buffers().ssd_used(), 0);
  EXPECT_EQ(run.dfs.namenode->memory_replica_count(), 0u);
  EXPECT_EQ(run.dfs.cluster->node(NodeId(0)).ssd().used(), 0);
}

TEST(TierEviction, DefaultPolicyPreservesSingleTierStall) {
  // The default policy (refuse on pressure, watermarks off) is the seed's
  // single-tier behaviour: a full buffer stalls the queue, nothing ever
  // reaches the SSD.
  TierRun run(4, 2 * kBlock, gib(1), TierPolicy{});
  EXPECT_EQ(run.master->migrations_completed(), 2);
  EXPECT_TRUE(run.slave().stalled());
  EXPECT_EQ(run.slave().demotions(), 0);
  EXPECT_EQ(run.slave().buffers().ssd_used(), 0);
  // Ending the job releases the buffers and discards the stalled work.
  run.master->evict_job(JobId(1));
  run.dfs.sim.run_until(minutes(4));
  EXPECT_EQ(run.slave().buffers().buffered_count(), 0u);
  EXPECT_EQ(run.slave().queued_count(), 0);
  EXPECT_EQ(run.master->migrations_completed(), 2);
}

}  // namespace
}  // namespace dyrs::core
