#include "exec/engine.h"

#include <gtest/gtest.h>

#include <map>

#include "exec/testbed.h"

namespace dyrs::exec {
namespace {

TestbedConfig small_config(Scheme scheme = Scheme::Hdfs) {
  TestbedConfig c;
  c.num_nodes = 4;
  c.disk_bandwidth = mib_per_sec(64);
  c.seek_alpha = 0.0;
  c.block_size = mib(64);
  c.master.slave.heartbeat_interval = seconds(1);
  c.master.slave.reference_block = mib(64);
  c.scheme = scheme;
  return c;
}

JobSpec simple_job(const std::string& file, int reducers = 0) {
  JobSpec spec;
  spec.name = "job";
  spec.input_files = {file};
  spec.selectivity = 0.1;
  spec.num_reducers = reducers;
  spec.platform_overhead = seconds(2);
  spec.task_overhead = milliseconds(100);
  return spec;
}

TEST(Engine, MapOnlyJobRunsToCompletion) {
  Testbed tb(small_config());
  tb.load_file("/in", mib(256));  // 4 blocks
  tb.submit(simple_job("/in"));
  tb.run();
  ASSERT_EQ(tb.metrics().jobs().size(), 1u);
  const auto& job = tb.metrics().jobs()[0];
  EXPECT_EQ(job.num_maps, 4);
  EXPECT_EQ(job.num_reduces, 0);
  EXPECT_GT(job.finished, job.submitted);
  EXPECT_EQ(tb.metrics().tasks().size(), 4u);
}

TEST(Engine, PlatformOverheadCreatesLeadTime) {
  Testbed tb(small_config());
  tb.load_file("/in", mib(64));
  auto spec = simple_job("/in");
  spec.platform_overhead = seconds(5);
  tb.submit(spec);
  tb.run();
  const auto& job = tb.metrics().jobs()[0];
  EXPECT_NEAR(job.lead_time_s(), 5.0, 0.1);
}

TEST(Engine, ExtraLeadTimeDelaysTasksNotMigration) {
  Testbed tb(small_config(Scheme::Dyrs));
  tb.load_file("/in", mib(256));
  auto spec = simple_job("/in");
  spec.platform_overhead = seconds(1);
  spec.extra_lead_time = seconds(10);
  tb.submit(spec);
  tb.run();
  const auto& job = tb.metrics().jobs()[0];
  EXPECT_NEAR(job.lead_time_s(), 11.0, 0.2);
  // With 11s of lead-time and 4 one-second blocks, everything migrated:
  // all map reads come from memory.
  EXPECT_NEAR(tb.metrics().memory_read_fraction(), 1.0, 1e-9);
}

TEST(Engine, ReduceStageFollowsMaps) {
  Testbed tb(small_config());
  tb.load_file("/in", mib(128));
  auto spec = simple_job("/in", /*reducers=*/2);
  tb.submit(spec);
  tb.run();
  const auto& job = tb.metrics().jobs()[0];
  EXPECT_GT(job.finished, job.maps_done);
  int maps = 0, reduces = 0;
  for (const auto& t : tb.metrics().tasks()) {
    if (t.phase == TaskPhase::Map) ++maps;
    if (t.phase == TaskPhase::Reduce) {
      ++reduces;
      EXPECT_GE(t.started, job.maps_done);
    }
  }
  EXPECT_EQ(maps, 2);
  EXPECT_EQ(reduces, 2);
}

TEST(Engine, MapsPreferLocalReplicas) {
  Testbed tb(small_config());
  tb.load_file("/in", mib(64) * 8);
  tb.submit(simple_job("/in"));
  tb.run();
  for (const auto& t : tb.metrics().tasks()) {
    // With 3-way replication on 4 nodes and free slots everywhere, every
    // map should find a local replica.
    EXPECT_EQ(t.medium, dfs::ReadMedium::LocalDisk);
    EXPECT_EQ(t.read_source, t.node);
  }
}

TEST(Engine, SlotsLimitParallelism) {
  TestbedConfig c = small_config();
  c.map_slots_per_node = 1;  // 4 slots total
  Testbed tb(c);
  tb.load_file("/in", mib(64) * 8);
  tb.submit(simple_job("/in"));
  tb.run();
  // 8 one-second reads over 4 slots: two waves; makespan >= 2 read times.
  const auto& job = tb.metrics().jobs()[0];
  EXPECT_GT(job.map_phase_s(), 2.0);
}

TEST(Engine, ConcurrentJobsShareCluster) {
  Testbed tb(small_config());
  tb.load_file("/a", mib(256));
  tb.load_file("/b", mib(256));
  tb.submit(simple_job("/a"));
  tb.submit(simple_job("/b"));
  tb.run();
  EXPECT_EQ(tb.metrics().jobs().size(), 2u);
  EXPECT_TRUE(tb.engine().all_done());
}

TEST(Engine, SubmitAtDelaysSubmission) {
  Testbed tb(small_config());
  tb.load_file("/in", mib(64));
  tb.submit_at(simple_job("/in"), seconds(30));
  tb.run();
  const auto& job = tb.metrics().jobs()[0];
  EXPECT_EQ(job.submitted, seconds(30));
}

TEST(Engine, JobActiveQueryTracksLifecycle) {
  Testbed tb(small_config());
  tb.load_file("/in", mib(64));
  const JobId id = tb.submit(simple_job("/in"));
  EXPECT_TRUE(tb.engine().job_active(id));
  tb.run();
  EXPECT_FALSE(tb.engine().job_active(id));
}

TEST(Engine, OnJobDoneCallbackFires) {
  Testbed tb(small_config());
  tb.load_file("/in", mib(64));
  std::vector<JobId> done;
  tb.engine().on_job_done = [&](const JobRecord& r) { done.push_back(r.id); };
  const JobId id = tb.submit(simple_job("/in"));
  tb.run();
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0], id);
}

TEST(Engine, DyrsMigratesBeforeTasksStart) {
  Testbed tb(small_config(Scheme::Dyrs));
  tb.load_file("/in", mib(256));
  auto spec = simple_job("/in");
  spec.platform_overhead = seconds(8);  // 4 blocks x 1s each: plenty
  tb.submit(spec);
  tb.run();
  EXPECT_NEAR(tb.metrics().memory_read_fraction(), 1.0, 1e-9);
  for (const auto& t : tb.metrics().tasks()) {
    EXPECT_TRUE(dfs::is_memory(t.medium));
    EXPECT_LT(t.read_s(), 0.1);
  }
}

TEST(Engine, HdfsNeverReadsMemory) {
  Testbed tb(small_config(Scheme::Hdfs));
  tb.load_file("/in", mib(256));
  tb.submit(simple_job("/in"));
  tb.run();
  EXPECT_DOUBLE_EQ(tb.metrics().memory_read_fraction(), 0.0);
}

TEST(Engine, InputsInRamAlwaysReadsMemory) {
  Testbed tb(small_config(Scheme::InputsInRam));
  tb.load_file("/in", mib(256));
  auto spec = simple_job("/in");
  spec.platform_overhead = milliseconds(100);  // no lead-time needed
  tb.submit(spec);
  tb.run();
  EXPECT_NEAR(tb.metrics().memory_read_fraction(), 1.0, 1e-9);
}

TEST(Engine, ZeroLeadTimeMeansNoMigrationBenefit) {
  Testbed tb(small_config(Scheme::Dyrs));
  tb.load_file("/in", mib(64));
  auto spec = simple_job("/in");
  spec.platform_overhead = 0;
  tb.submit(spec);
  tb.run();
  // The single block's read starts immediately; the migration is missed
  // and cancelled, and the read comes from disk.
  EXPECT_DOUBLE_EQ(tb.metrics().memory_read_fraction(), 0.0);
  ASSERT_EQ(tb.master()->cancels().size(), 1u);
  EXPECT_EQ(tb.master()->cancels()[0].reason, core::CancelReason::MissedRead);
}

TEST(Engine, MetricsAggregates) {
  Testbed tb(small_config());
  tb.load_file("/in", mib(128));
  tb.submit(simple_job("/in"));
  tb.run();
  EXPECT_GT(tb.metrics().mean_job_duration_s(), 0.0);
  EXPECT_GT(tb.metrics().mean_map_task_duration_s(), 0.0);
}

TEST(Engine, OutputReplicationWritesToMultipleDisks) {
  auto run_with_replication = [](int replication) {
    TestbedConfig c = small_config();
    c.output_replication = replication;
    Testbed tb(c);
    tb.load_file("/in", mib(128));
    auto spec = simple_job("/in", /*reducers=*/2);
    spec.selectivity = 1.0;  // meaningful output volume
    tb.submit(spec);
    tb.run();
    double write_bytes = 0;
    for (NodeId id : tb.cluster().node_ids()) {
      write_bytes += tb.cluster().node(id).disk().bytes_by_class(cluster::IoClass::Write);
    }
    return write_bytes;
  };
  const double single = run_with_replication(1);
  const double triple = run_with_replication(3);
  EXPECT_NEAR(triple, single * 3.0, single * 0.01);
}

TEST(Engine, EmptyInputFilesThrow) {
  Testbed tb(small_config());
  JobSpec spec;
  spec.name = "bad";
  EXPECT_THROW(tb.submit(spec), CheckError);
}

}  // namespace
}  // namespace dyrs::exec
