#include "exec/metrics.h"

#include <gtest/gtest.h>

#include "common/check.h"

namespace dyrs::exec {
namespace {

TaskRecord map_task(double start_s, double dur_s, Bytes input, dfs::ReadMedium medium) {
  TaskRecord t;
  t.phase = TaskPhase::Map;
  t.started = seconds(start_s);
  t.read_started = seconds(start_s);
  t.read_done = seconds(start_s + dur_s / 2);
  t.finished = seconds(start_s + dur_s);
  t.input = input;
  t.medium = medium;
  return t;
}

TEST(Metrics, MeanJobDuration) {
  Metrics m;
  JobRecord a;
  a.submitted = seconds(0);
  a.finished = seconds(10);
  JobRecord b;
  b.submitted = seconds(5);
  b.finished = seconds(25);
  m.add_job(a);
  m.add_job(b);
  EXPECT_DOUBLE_EQ(m.mean_job_duration_s(), 15.0);
}

TEST(Metrics, MeanMapTaskIgnoresReduces) {
  Metrics m;
  m.add_task(map_task(0, 4.0, mib(64), dfs::ReadMedium::LocalDisk));
  TaskRecord reduce;
  reduce.phase = TaskPhase::Reduce;
  reduce.started = 0;
  reduce.finished = seconds(100);
  m.add_task(reduce);
  EXPECT_DOUBLE_EQ(m.mean_map_task_duration_s(), 4.0);
}

TEST(Metrics, MemoryReadFractionWeightsByBytes) {
  Metrics m;
  m.add_task(map_task(0, 1, mib(192), dfs::ReadMedium::LocalMemory));
  m.add_task(map_task(0, 1, mib(64), dfs::ReadMedium::LocalDisk));
  EXPECT_DOUBLE_EQ(m.memory_read_fraction(), 0.75);
}

TEST(Metrics, MemoryReadFractionCountsRemoteMemory) {
  Metrics m;
  m.add_task(map_task(0, 1, mib(64), dfs::ReadMedium::RemoteMemory));
  EXPECT_DOUBLE_EQ(m.memory_read_fraction(), 1.0);
}

TEST(Metrics, EmptyAggregatesAreZero) {
  Metrics m;
  EXPECT_DOUBLE_EQ(m.mean_job_duration_s(), 0.0);
  EXPECT_DOUBLE_EQ(m.mean_map_task_duration_s(), 0.0);
  EXPECT_DOUBLE_EQ(m.memory_read_fraction(), 0.0);
}

TEST(Metrics, JobLookup) {
  Metrics m;
  JobRecord a;
  a.id = JobId(7);
  a.name = "seven";
  m.add_job(a);
  EXPECT_EQ(m.job(JobId(7)).name, "seven");
  EXPECT_THROW(m.job(JobId(8)), CheckError);
}

TEST(Metrics, FindJobIsNullableAndIndexed) {
  Metrics m;
  // Non-contiguous ids exercise the index rather than positional luck.
  for (std::int64_t id : {3, 11, 7}) {
    JobRecord r;
    r.id = JobId(id);
    r.name = "job-" + std::to_string(id);
    m.add_job(r);
  }
  ASSERT_NE(m.find_job(JobId(11)), nullptr);
  EXPECT_EQ(m.find_job(JobId(11))->name, "job-11");
  EXPECT_EQ(m.find_job(JobId(7))->name, "job-7");
  EXPECT_EQ(m.find_job(JobId(4)), nullptr);
  EXPECT_EQ(m.find_job(JobId(11)), &m.job(JobId(11)));
}

TEST(JobRecord, DerivedDurations) {
  JobRecord j;
  j.submitted = seconds(10);
  j.eligible = seconds(15);
  j.first_task_start = seconds(16);
  j.maps_done = seconds(30);
  j.finished = seconds(40);
  EXPECT_DOUBLE_EQ(j.duration_s(), 30.0);
  EXPECT_DOUBLE_EQ(j.map_phase_s(), 20.0);
  EXPECT_DOUBLE_EQ(j.lead_time_s(), 6.0);
}

TEST(TaskRecord, DerivedDurations) {
  auto t = map_task(2.0, 3.0, mib(1), dfs::ReadMedium::LocalDisk);
  EXPECT_DOUBLE_EQ(t.duration_s(), 3.0);
  EXPECT_DOUBLE_EQ(t.read_s(), 1.5);
}

}  // namespace
}  // namespace dyrs::exec
