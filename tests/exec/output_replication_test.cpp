// Output write-pipeline edge cases.
#include <gtest/gtest.h>

#include "exec/testbed.h"

namespace dyrs::exec {
namespace {

TestbedConfig cfg(int replication, int nodes = 4) {
  TestbedConfig c;
  c.num_nodes = nodes;
  c.disk_bandwidth = mib_per_sec(64);
  c.seek_alpha = 0.0;
  c.block_size = mib(64);
  c.scheme = Scheme::Hdfs;
  c.output_replication = replication;
  return c;
}

double run_job(Testbed& tb, double selectivity = 1.0) {
  tb.load_file("/in", mib(128));
  JobSpec job;
  job.name = "j";
  job.input_files = {"/in"};
  job.selectivity = selectivity;
  job.num_reducers = 2;
  job.platform_overhead = seconds(1);
  tb.submit(job);
  tb.run();
  return tb.metrics().jobs()[0].duration_s();
}

TEST(OutputReplication, TripleWriteSlowsJob) {
  Testbed single(cfg(1));
  Testbed triple(cfg(3));
  const double t1 = run_job(single);
  const double t3 = run_job(triple);
  // Extra pipeline members add disk load; with 4 nodes the remote copies
  // land on disks the reducers also use, so the job takes longer.
  EXPECT_GT(t3, t1);
}

TEST(OutputReplication, CappedByClusterSize) {
  // Replication 5 on a 3-node cluster: only 3 copies possible; no crash,
  // 3x write bytes.
  Testbed tb(cfg(5, 3));
  run_job(tb);
  double write_bytes = 0;
  for (NodeId id : tb.cluster().node_ids()) {
    write_bytes += tb.cluster().node(id).disk().bytes_by_class(cluster::IoClass::Write);
  }
  EXPECT_NEAR(write_bytes, 3.0 * static_cast<double>(mib(128)),
              static_cast<double>(mib(2)));
}

TEST(OutputReplication, SkipsDeadRemotes) {
  Testbed tb(cfg(3, 4));
  tb.cluster().node(NodeId(3)).set_alive(false);
  tb.simulator().run_until(seconds(15));  // liveness detection
  run_job(tb);
  // Job completes; the dead node received no writes.
  EXPECT_DOUBLE_EQ(tb.cluster().node(NodeId(3)).disk().bytes_by_class(cluster::IoClass::Write),
                   0.0);
}

TEST(OutputReplication, ZeroOutputJobUnaffected) {
  Testbed tb(cfg(3));
  tb.load_file("/in", mib(128));
  JobSpec job;
  job.name = "j";
  job.input_files = {"/in"};
  job.selectivity = 1.0;
  job.shuffle_bytes = mib(64);
  job.output_bytes = 0;
  job.num_reducers = 2;
  tb.submit(job);
  tb.run();
  double write_bytes = 0;
  for (NodeId id : tb.cluster().node_ids()) {
    write_bytes += tb.cluster().node(id).disk().bytes_by_class(cluster::IoClass::Write);
  }
  EXPECT_DOUBLE_EQ(write_bytes, 0.0);
}

TEST(OutputReplication, InvalidConfigThrows) {
  TestbedConfig c = cfg(0);
  EXPECT_THROW(Testbed tb(c), CheckError);
}

}  // namespace
}  // namespace dyrs::exec
