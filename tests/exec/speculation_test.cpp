// Speculative-execution tests: duplicate attempts rescue stragglers on a
// crippled node; first finisher wins; losers only release their slot.
#include <gtest/gtest.h>

#include "exec/testbed.h"

namespace dyrs::exec {
namespace {

TestbedConfig config(bool speculation) {
  TestbedConfig c;
  c.num_nodes = 5;
  c.disk_bandwidth = mib_per_sec(64);
  c.seek_alpha = 0.0;
  c.block_size = mib(64);
  c.scheme = Scheme::Hdfs;
  c.map_slots_per_node = 2;
  // Engine knobs flow through TestbedConfig only for slots; build engine
  // options via the master config? Speculation lives on Engine::Options,
  // wired below through the testbed config extension.
  c.speculative_execution = speculation;
  return c;
}

double run_with_straggler_node(bool speculation) {
  Testbed tb(config(speculation));
  // Node 0's disk is nearly dead: local reads there take ~10x longer.
  for (int i = 0; i < 9; ++i) tb.cluster().node(NodeId(0)).disk().start_interference();
  // Single wave (10 tasks over 10 slots): duplicates find free slots as
  // soon as the fast nodes drain, isolating the speculation effect.
  tb.load_file("/in", mib(64) * 10);
  JobSpec job;
  job.name = "scan";
  job.input_files = {"/in"};
  job.selectivity = 0.05;
  job.num_reducers = 0;
  job.platform_overhead = seconds(1);
  job.task_overhead = milliseconds(100);
  tb.submit(job);
  tb.run();
  return tb.metrics().jobs()[0].duration_s();
}

TEST(Speculation, RescuesStragglersOnSlowNode) {
  const double without = run_with_straggler_node(false);
  const double with = run_with_straggler_node(true);
  EXPECT_LT(with, without * 0.8);
}

TEST(Speculation, LaunchesAndWinsAreCounted) {
  Testbed tb(config(true));
  for (int i = 0; i < 9; ++i) tb.cluster().node(NodeId(0)).disk().start_interference();
  tb.load_file("/in", mib(64) * 30);
  JobSpec job;
  job.name = "scan";
  job.input_files = {"/in"};
  job.selectivity = 0.05;
  job.num_reducers = 0;
  job.platform_overhead = seconds(1);
  tb.submit(job);
  tb.run();
  EXPECT_GT(tb.engine().speculative_launches(), 0);
  EXPECT_GT(tb.engine().speculative_wins(), 0);
  EXPECT_LE(tb.engine().speculative_wins(), tb.engine().speculative_launches());
  // Every map completed exactly once in the metrics.
  int maps = 0;
  for (const auto& t : tb.metrics().tasks()) {
    if (t.phase == TaskPhase::Map) ++maps;
  }
  EXPECT_EQ(maps, 30);
}

TEST(Speculation, QuietWhenClusterHomogeneous) {
  Testbed tb(config(true));
  tb.load_file("/in", mib(64) * 20);
  JobSpec job;
  job.name = "scan";
  job.input_files = {"/in"};
  job.selectivity = 0.05;
  job.num_reducers = 0;
  job.platform_overhead = seconds(1);
  tb.submit(job);
  tb.run();
  // Uniform nodes: no task exceeds 2x the median; nothing speculates.
  EXPECT_EQ(tb.engine().speculative_launches(), 0);
}

TEST(Speculation, DisabledByDefault) {
  TestbedConfig c;
  c.num_nodes = 3;
  Testbed tb(c);
  EXPECT_EQ(tb.engine().speculative_launches(), 0);
}

}  // namespace
}  // namespace dyrs::exec
