#include "exec/testbed.h"

#include <gtest/gtest.h>

#include "workloads/sort.h"

namespace dyrs::exec {
namespace {

TestbedConfig tiny(Scheme scheme) {
  TestbedConfig c;
  c.num_nodes = 3;
  c.block_size = mib(64);
  c.scheme = scheme;
  c.master.slave.reference_block = mib(64);
  return c;
}

TEST(Testbed, SchemeNames) {
  EXPECT_STREQ(to_string(Scheme::Hdfs), "HDFS");
  EXPECT_STREQ(to_string(Scheme::InputsInRam), "HDFS-Inputs-in-RAM");
  EXPECT_STREQ(to_string(Scheme::Ignem), "Ignem");
  EXPECT_STREQ(to_string(Scheme::Dyrs), "DYRS");
  EXPECT_STREQ(to_string(Scheme::NaiveBalancer), "NaiveBalancer");
}

TEST(Testbed, ServiceWiringPerScheme) {
  {
    Testbed tb(tiny(Scheme::Hdfs));
    EXPECT_EQ(tb.master(), nullptr);
    EXPECT_EQ(tb.oracle(), nullptr);
    EXPECT_NE(tb.service(), nullptr);
    EXPECT_EQ(tb.service()->name(), "HDFS");
  }
  {
    Testbed tb(tiny(Scheme::Dyrs));
    ASSERT_NE(tb.master(), nullptr);
    EXPECT_EQ(tb.master()->name(), "DYRS");
  }
  {
    Testbed tb(tiny(Scheme::Ignem));
    ASSERT_NE(tb.master(), nullptr);
    EXPECT_EQ(tb.master()->name(), "Ignem");
  }
  {
    Testbed tb(tiny(Scheme::InputsInRam));
    EXPECT_EQ(tb.master(), nullptr);
    ASSERT_NE(tb.oracle(), nullptr);
    EXPECT_EQ(tb.oracle()->name(), "HDFS-Inputs-in-RAM");
  }
  {
    Testbed tb(tiny(Scheme::NaiveBalancer));
    ASSERT_NE(tb.master(), nullptr);
    EXPECT_EQ(tb.master()->name(), "NaiveBalancer");
  }
}

TEST(Testbed, LoadFileRegistersBlocksOnDatanodes) {
  Testbed tb(tiny(Scheme::Hdfs));
  const auto& f = tb.load_file("/x", mib(192));
  EXPECT_EQ(f.blocks.size(), 3u);
  for (BlockId b : f.blocks) {
    EXPECT_FALSE(tb.namenode().block_locations(b).empty());
  }
}

TEST(Testbed, DuplicateLoadThrows) {
  Testbed tb(tiny(Scheme::Hdfs));
  tb.load_file("/x", mib(64));
  EXPECT_THROW(tb.load_file("/x", mib(64)), CheckError);
}

TEST(Testbed, InterferenceSlowsTheTargetDisk) {
  Testbed tb(tiny(Scheme::Hdfs));
  auto& dd = tb.add_persistent_interference(NodeId(0), 2);
  EXPECT_TRUE(dd.active());
  EXPECT_EQ(tb.cluster().node(NodeId(0)).disk().active_interference(), 2);
  EXPECT_EQ(tb.cluster().node(NodeId(1)).disk().active_interference(), 0);
}

TEST(Testbed, AlternatingInterferenceInstalls) {
  Testbed tb(tiny(Scheme::Hdfs));
  auto& alt = tb.add_alternating_interference(NodeId(1), seconds(5), true);
  EXPECT_TRUE(alt.active());
  tb.simulator().run_until(seconds(5));
  EXPECT_FALSE(alt.active());
  alt.stop();
}

TEST(Testbed, RunReturnsAtMaxTimeWithUnfinishedWork) {
  Testbed tb(tiny(Scheme::Hdfs));
  tb.load_file("/x", gib(2));
  JobSpec job;
  job.name = "x";
  job.input_files = {"/x"};
  job.platform_overhead = minutes(30);  // won't even start
  tb.submit(job);
  const SimTime end = tb.run(/*max_time=*/seconds(10));
  EXPECT_LE(end, seconds(10) + seconds(1));
  EXPECT_TRUE(tb.metrics().jobs().empty());
}

TEST(Testbed, RunCompletesSubmittedWork) {
  Testbed tb(tiny(Scheme::Dyrs));
  tb.load_file("/x", mib(256));
  wl::SortConfig sort;
  sort.input = mib(256);
  sort.reducers = 2;
  tb.submit(wl::sort_job("/x", sort));
  tb.run();
  EXPECT_TRUE(tb.engine().all_done());
  EXPECT_EQ(tb.metrics().jobs().size(), 1u);
}

}  // namespace
}  // namespace dyrs::exec
