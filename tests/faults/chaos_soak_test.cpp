// Chaos soak: randomized seeded fault plans replayed against every scheme.
// Under any combination of crashes, server deaths, partitions, I/O-error
// windows and disk degradation, all jobs must complete and the cross-layer
// invariants must hold; the same seed must reproduce the same fault trace.
#include <gtest/gtest.h>

#include <string>

#include "exec/testbed.h"
#include "faults/fault_plan.h"
#include "workloads/sort.h"

namespace dyrs::faults {
namespace {

struct SoakResult {
  std::size_t jobs_completed = 0;
  std::size_t violations = 0;
  std::vector<std::string> trace;
  double makespan_s = 0;
};

SoakResult run_soak(exec::Scheme scheme, std::uint64_t seed) {
  exec::TestbedConfig config;
  config.num_nodes = 5;
  config.disk_bandwidth = mib_per_sec(128);
  config.seek_alpha = 0.15;
  config.block_size = mib(128);
  config.replication = 3;
  config.placement_seed = seed;
  config.fault_seed = seed + 17;
  config.scheme = scheme;
  config.master.slave.reference_block = mib(128);
  config.master.slave.retry.backoff = milliseconds(250);
  exec::Testbed tb(config);

  auto& checker = tb.enable_invariant_checks();
  RandomPlanOptions opts;
  opts.num_nodes = config.num_nodes;
  opts.start = seconds(2);
  opts.horizon = seconds(90);
  opts.incidents = 4;
  opts.io_error_windows = 3;
  opts.degradation_windows = 2;
  auto& injector = tb.install_fault_plan(FaultPlan::random(opts, seed));

  tb.load_file("/soak/a", gib(1));
  tb.load_file("/soak/b", mib(512));
  wl::SortConfig sort;
  sort.input = gib(1);
  sort.platform_overhead = seconds(6);
  sort.reducers = 4;
  tb.submit(wl::sort_job("/soak/a", sort));
  exec::JobSpec scan;
  scan.name = "scan";
  scan.input_files = {"/soak/b"};
  scan.selectivity = 0.2;
  scan.num_reducers = 2;
  scan.platform_overhead = seconds(5);
  tb.submit_at(scan, seconds(20));
  const SimTime end = tb.run(/*max_time=*/hours(2));

  SoakResult r;
  r.jobs_completed = tb.metrics().jobs().size();
  r.violations = checker.violations().size();
  r.trace = injector.trace();
  r.makespan_s = to_seconds(end);
  for (const auto& v : checker.violations()) {
    ADD_FAILURE() << to_string(scheme) << " seed " << seed << ": invariant " << v.invariant
                  << " violated at t=" << to_seconds(v.at) << "s: " << v.detail;
  }
  return r;
}

class ChaosSoakTest : public ::testing::TestWithParam<exec::Scheme> {};

TEST_P(ChaosSoakTest, JobsCompleteAndInvariantsHoldUnderRandomFaults) {
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    const SoakResult r = run_soak(GetParam(), seed);
    EXPECT_EQ(r.jobs_completed, 2u) << "seed " << seed;
    EXPECT_EQ(r.violations, 0u) << "seed " << seed;
    EXPECT_FALSE(r.trace.empty()) << "seed " << seed;
  }
}

TEST_P(ChaosSoakTest, SameSeedSameFaultTraceAndOutcome) {
  const SoakResult a = run_soak(GetParam(), 5);
  const SoakResult b = run_soak(GetParam(), 5);
  EXPECT_EQ(a.trace, b.trace);
  EXPECT_EQ(a.jobs_completed, b.jobs_completed);
  EXPECT_DOUBLE_EQ(a.makespan_s, b.makespan_s);
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, ChaosSoakTest,
                         ::testing::Values(exec::Scheme::Hdfs, exec::Scheme::InputsInRam,
                                           exec::Scheme::Ignem, exec::Scheme::Dyrs,
                                           exec::Scheme::NaiveBalancer),
                         [](const ::testing::TestParamInfo<exec::Scheme>& info) {
                           std::string name = to_string(info.param);
                           for (char& c : name) {
                             if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace dyrs::faults
