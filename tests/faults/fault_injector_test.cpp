#include "faults/fault_injector.h"

#include <gtest/gtest.h>

#include "testing/fixture.h"

namespace dyrs::faults {
namespace {

using dyrs::testing::MiniDfs;

struct InjectorFixture : ::testing::Test {
  MiniDfs dfs;
  FaultInjector injector{dfs.sim, *dfs.cluster, *dfs.namenode, /*seed=*/7};
};

TEST_F(InjectorFixture, ProcessCrashAndRestart) {
  FaultPlan plan;
  plan.crash_process(NodeId(1), seconds(1), seconds(2));
  injector.install(plan);
  dfs::DataNode* dn = dfs.namenode->datanode(NodeId(1));
  dfs.sim.run_until(milliseconds(1500));
  EXPECT_FALSE(dn->process_alive());
  EXPECT_TRUE(dn->node().alive());  // server stays up
  dfs.sim.run_until(milliseconds(2500));
  EXPECT_TRUE(dn->process_alive());
  EXPECT_EQ(injector.events_applied(), 2);
}

TEST_F(InjectorFixture, ServerDeathKillsProcessAndRejoins) {
  FaultPlan plan;
  plan.kill_server(NodeId(2), seconds(1), seconds(3));
  injector.install(plan);
  dfs::DataNode* dn = dfs.namenode->datanode(NodeId(2));
  dfs.sim.run_until(seconds(2));
  EXPECT_FALSE(dn->node().alive());
  EXPECT_FALSE(dn->process_alive());
  EXPECT_FALSE(dn->serving());
  dfs.sim.run_until(seconds(4));
  EXPECT_TRUE(dn->node().alive());
  EXPECT_TRUE(dn->process_alive());
  EXPECT_TRUE(dn->serving());
}

TEST_F(InjectorFixture, PartitionStopsHeartbeatsUntilHealed) {
  // MiniDfs heartbeats every 1s with a miss limit of 3.
  FaultPlan plan;
  plan.partition(NodeId(0), seconds(1), seconds(10));
  injector.install(plan);
  dfs::DataNode* dn = dfs.namenode->datanode(NodeId(0));
  dfs.sim.run_until(seconds(2));
  EXPECT_TRUE(dn->partitioned());
  EXPECT_TRUE(dn->serving());  // process and server survive a partition
  EXPECT_TRUE(dfs.namenode->available(NodeId(0)));  // not yet detected
  dfs.sim.run_until(seconds(8));
  EXPECT_FALSE(dfs.namenode->available(NodeId(0)));  // declared dead
  dfs.sim.run_until(seconds(12));
  EXPECT_FALSE(dn->partitioned());
  EXPECT_TRUE(dfs.namenode->available(NodeId(0)));  // heartbeats resumed
}

TEST_F(InjectorFixture, DiskDegradationStacksAndRestores) {
  const Rate nominal = dfs.cluster->node(NodeId(0)).disk().bandwidth();
  FaultPlan plan;
  plan.degrade_disk(NodeId(0), seconds(1), seconds(4), 0.5);
  plan.degrade_disk(NodeId(0), seconds(2), seconds(3), 0.5);
  injector.install(plan);
  dfs.sim.run_until(milliseconds(1500));
  EXPECT_DOUBLE_EQ(dfs.cluster->node(NodeId(0)).disk().bandwidth(), nominal * 0.5);
  dfs.sim.run_until(milliseconds(2500));  // overlapping windows multiply
  EXPECT_DOUBLE_EQ(dfs.cluster->node(NodeId(0)).disk().bandwidth(), nominal * 0.25);
  dfs.sim.run_until(milliseconds(3500));
  EXPECT_DOUBLE_EQ(dfs.cluster->node(NodeId(0)).disk().bandwidth(), nominal * 0.5);
  dfs.sim.run_until(milliseconds(4500));
  EXPECT_DOUBLE_EQ(dfs.cluster->node(NodeId(0)).disk().bandwidth(), nominal);
  EXPECT_DOUBLE_EQ(dfs.cluster->node(NodeId(0)).disk().nominal_bandwidth(), nominal);
}

TEST_F(InjectorFixture, IoErrorWindowFailsMigrationReads) {
  FaultPlan plan;
  plan.io_errors(NodeId(1), seconds(1), seconds(2), /*rate=*/1.0);
  injector.install(plan);
  dfs::DataNode* dn = dfs.namenode->datanode(NodeId(1));
  ASSERT_TRUE(dn->migration_read_fault);  // hook installed
  int in_window = 0, outside = 0;
  dfs.sim.schedule_at(milliseconds(1500), [&]() {
    for (int i = 0; i < 4; ++i) in_window += dn->migration_read_fault() ? 1 : 0;
  });
  dfs.sim.schedule_at(milliseconds(2500), [&]() {
    for (int i = 0; i < 4; ++i) outside += dn->migration_read_fault() ? 1 : 0;
  });
  dfs.sim.run_until(seconds(3));
  EXPECT_EQ(in_window, 4);  // rate 1.0: every read in the window fails
  EXPECT_EQ(outside, 0);
  EXPECT_EQ(injector.io_errors_injected(), 4);
}

TEST_F(InjectorFixture, AfterEventHookFiresPerTransition) {
  FaultPlan plan;
  plan.crash_process(NodeId(1), seconds(1), seconds(2));
  plan.partition(NodeId(2), seconds(1), seconds(3));
  injector.install(plan);
  int fired = 0;
  injector.after_event = [&]() { ++fired; };
  dfs.sim.run_until(seconds(4));
  EXPECT_EQ(fired, 4);  // two starts + two ends
}

TEST(FaultPlan, RandomIsDeterministicPerSeed) {
  RandomPlanOptions opts;
  opts.num_nodes = 5;
  const FaultPlan a = FaultPlan::random(opts, 42);
  const FaultPlan b = FaultPlan::random(opts, 42);
  ASSERT_EQ(a.events.size(), b.events.size());
  ASSERT_FALSE(a.events.empty());
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].describe(), b.events[i].describe());
  }
  const FaultPlan c = FaultPlan::random(opts, 43);
  bool differs = c.events.size() != a.events.size();
  for (std::size_t i = 0; !differs && i < a.events.size(); ++i) {
    differs = a.events[i].describe() != c.events[i].describe();
  }
  EXPECT_TRUE(differs);
}

TEST(FaultPlan, RandomDownIncidentsNeverOverlap) {
  RandomPlanOptions opts;
  opts.num_nodes = 7;
  opts.incidents = 10;
  opts.horizon = seconds(600);
  const FaultPlan plan = FaultPlan::random(opts, 11);
  SimTime last_end = -1;
  for (const FaultEvent& e : plan.events) {
    if (e.kind == FaultKind::IoErrors || e.kind == FaultKind::DiskDegradation) continue;
    EXPECT_GE(e.at, last_end) << e.describe();
    last_end = e.until;
  }
}

TEST(FaultInjector, TraceIsReproducible) {
  auto run_once = []() {
    MiniDfs dfs;
    FaultInjector injector(dfs.sim, *dfs.cluster, *dfs.namenode, /*seed=*/5);
    RandomPlanOptions opts;
    opts.num_nodes = 4;
    opts.horizon = seconds(60);
    injector.install(FaultPlan::random(opts, 21));
    dfs.sim.run_until(seconds(70));
    return injector.trace();
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace dyrs::faults
