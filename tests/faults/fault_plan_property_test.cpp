// Property tests for the seeded random plan generator and the plan-build
// validation layer: every generated plan must satisfy the documented
// structural guarantees (non-overlapping down incidents separated by the
// incident gap, windows inside the horizon, rates and factors in their
// domains) and be bit-identical for the same (options, seed).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/check.h"
#include "faults/fault_plan.h"

namespace dyrs::faults {
namespace {

bool is_down_incident(const FaultEvent& e) {
  return e.kind == FaultKind::ProcessCrash || e.kind == FaultKind::ServerDeath ||
         e.kind == FaultKind::Partition;
}

std::string flatten(const FaultPlan& plan) {
  std::string out;
  for (const FaultEvent& e : plan.events) out += e.describe() + "\n";
  return out;
}

RandomPlanOptions small_options() {
  RandomPlanOptions opts;
  opts.num_nodes = 6;
  opts.start = seconds(1);
  opts.horizon = seconds(90);
  opts.incidents = 5;
  opts.io_error_windows = 4;
  opts.degradation_windows = 3;
  opts.min_down = seconds(2);
  opts.max_down = seconds(8);
  opts.incident_gap = seconds(5);
  opts.min_window = seconds(3);
  opts.max_window = seconds(10);
  return opts;
}

TEST(FaultPlanProperty, DownIncidentsAreDisjointAndGapSeparated) {
  const RandomPlanOptions opts = small_options();
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    const FaultPlan plan = FaultPlan::random(opts, seed);
    std::vector<FaultEvent> downs;
    for (const FaultEvent& e : plan.events) {
      if (is_down_incident(e)) downs.push_back(e);
    }
    // Plan is sorted by start; incidents are generated sequentially, so
    // each must begin at least incident_gap after the previous one ended.
    for (std::size_t i = 1; i < downs.size(); ++i) {
      EXPECT_GE(downs[i].at, downs[i - 1].until + opts.incident_gap)
          << "seed " << seed << ": " << downs[i].describe() << " overlaps recovery of "
          << downs[i - 1].describe();
    }
  }
}

TEST(FaultPlanProperty, EventsStayWithinHorizonAndDomains) {
  const RandomPlanOptions opts = small_options();
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    const FaultPlan plan = FaultPlan::random(opts, seed);
    for (const FaultEvent& e : plan.events) {
      EXPECT_GE(e.at, opts.start) << e.describe();
      EXPECT_LT(e.at, opts.horizon) << e.describe();
      EXPECT_GT(e.until, e.at) << e.describe();
      EXPECT_GE(e.node.value(), 0) << e.describe();
      EXPECT_LT(e.node.value(), opts.num_nodes) << e.describe();
      if (is_down_incident(e)) {
        EXPECT_LT(e.until, opts.horizon) << e.describe();
        EXPECT_GE(e.until - e.at, opts.min_down) << e.describe();
        EXPECT_LE(e.until - e.at, opts.max_down) << e.describe();
      } else {
        EXPECT_LE(e.until, opts.horizon) << e.describe();
      }
      if (e.kind == FaultKind::IoErrors) {
        EXPECT_GE(e.rate, 0.05) << e.describe();
        EXPECT_LE(e.rate, opts.max_io_error_rate) << e.describe();
      }
      if (e.kind == FaultKind::DiskDegradation) {
        EXPECT_GE(e.factor, opts.min_degradation) << e.describe();
        EXPECT_LE(e.factor, 0.9) << e.describe();
      }
    }
  }
}

TEST(FaultPlanProperty, SameSeedIsBitIdenticalDifferentSeedDiffers) {
  const RandomPlanOptions opts = small_options();
  bool any_difference = false;
  std::string prev;
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    const std::string a = flatten(FaultPlan::random(opts, seed));
    const std::string b = flatten(FaultPlan::random(opts, seed));
    EXPECT_EQ(a, b) << "seed " << seed << " is not reproducible";
    if (seed > 1 && a != prev) any_difference = true;
    prev = a;
  }
  EXPECT_TRUE(any_difference) << "all 50 seeds produced the same plan";
}

TEST(FaultPlanValidation, RejectsOutOfDomainEventsAtBuildTime) {
  FaultPlan plan;
  EXPECT_THROW(plan.io_errors(NodeId(0), seconds(1), seconds(2), -0.1), dyrs::CheckError);
  EXPECT_THROW(plan.io_errors(NodeId(0), seconds(1), seconds(2), 1.5), dyrs::CheckError);
  EXPECT_THROW(plan.degrade_disk(NodeId(0), seconds(1), seconds(2), 0.0), dyrs::CheckError);
  EXPECT_THROW(plan.degrade_disk(NodeId(0), seconds(1), seconds(2), 1.2), dyrs::CheckError);
  EXPECT_THROW(plan.crash_process(NodeId(), seconds(1), seconds(2)), dyrs::CheckError);
  EXPECT_THROW(plan.partition(NodeId(1), -seconds(1), seconds(2)), dyrs::CheckError);
  EXPECT_TRUE(plan.events.empty()) << "rejected events must not land in the plan";

  plan.io_errors(NodeId(0), seconds(1), seconds(2), 0.25);
  plan.degrade_disk(NodeId(1), seconds(1), seconds(2), 0.5);
  EXPECT_EQ(plan.events.size(), 2u);
}

TEST(FaultPlanValidation, RejectsDegenerateGeneratorOptions) {
  {
    RandomPlanOptions opts = small_options();
    opts.num_nodes = 0;
    EXPECT_THROW(FaultPlan::random(opts, 1), dyrs::CheckError);
  }
  {
    RandomPlanOptions opts = small_options();
    opts.horizon = opts.start;
    EXPECT_THROW(FaultPlan::random(opts, 1), dyrs::CheckError);
  }
  {
    RandomPlanOptions opts = small_options();
    opts.max_down = opts.min_down - 1;
    EXPECT_THROW(FaultPlan::random(opts, 1), dyrs::CheckError);
  }
  {
    RandomPlanOptions opts = small_options();
    opts.max_io_error_rate = 0.01;  // below the generator's 0.05 floor
    EXPECT_THROW(FaultPlan::random(opts, 1), dyrs::CheckError);
  }
  {
    RandomPlanOptions opts = small_options();
    opts.min_degradation = 0.95;  // above the generator's 0.9 ceiling
    EXPECT_THROW(FaultPlan::random(opts, 1), dyrs::CheckError);
  }
}

}  // namespace
}  // namespace dyrs::faults
