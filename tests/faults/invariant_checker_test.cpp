#include "faults/invariant_checker.h"

#include <gtest/gtest.h>

#include "exec/testbed.h"
#include "workloads/sort.h"

namespace dyrs::faults {
namespace {

exec::TestbedConfig small_config(exec::Scheme scheme) {
  exec::TestbedConfig c;
  c.num_nodes = 5;
  c.disk_bandwidth = mib_per_sec(128);
  c.seek_alpha = 0.0;
  c.block_size = mib(128);
  c.replication = 3;
  c.scheme = scheme;
  c.master.slave.reference_block = mib(128);
  return c;
}

TEST(InvariantChecker, CleanRunHasNoViolations) {
  exec::Testbed tb(small_config(exec::Scheme::Dyrs));
  auto& checker = tb.enable_invariant_checks();
  tb.load_file("/in", gib(1));
  wl::SortConfig sort;
  sort.input = gib(1);
  sort.platform_overhead = seconds(8);
  tb.submit(wl::sort_job("/in", sort));
  tb.run();
  EXPECT_GE(checker.checks_run(), 10);
  EXPECT_TRUE(checker.violations().empty());
}

TEST(InvariantChecker, CleanRunUnderCrashAndFailoverHasNoViolations) {
  // Correctly-handled failures must not trip the checker: crash cleanup,
  // restart, and master failover all keep the layers consistent.
  exec::Testbed tb(small_config(exec::Scheme::Dyrs));
  auto& checker = tb.enable_invariant_checks();
  tb.load_file("/in", gib(1));
  wl::SortConfig sort;
  sort.input = gib(1);
  sort.platform_overhead = seconds(10);
  tb.submit(wl::sort_job("/in", sort));
  tb.simulator().schedule_at(seconds(2),
                             [&]() { tb.namenode().datanode(NodeId(1))->crash_process(); });
  tb.simulator().schedule_at(seconds(4),
                             [&]() { tb.namenode().datanode(NodeId(1))->restart_process(); });
  tb.simulator().schedule_at(seconds(5), [&]() { tb.master()->master_failover(); });
  tb.run();
  EXPECT_TRUE(checker.violations().empty());
}

TEST(InvariantChecker, DetectsGhostMemoryReplica) {
  // A registry entry with no backing buffer is exactly the inconsistency
  // the checker exists to catch.
  exec::Testbed tb(small_config(exec::Scheme::Dyrs));
  auto& checker = tb.enable_invariant_checks();
  const auto& f = tb.load_file("/in", mib(256));
  tb.simulator().schedule_at(seconds(1), [&]() {
    tb.namenode().register_memory_replica(f.blocks[0], NodeId(0));
  });
  tb.simulator().run_until(seconds(3));
  ASSERT_FALSE(checker.violations().empty());
  EXPECT_EQ(checker.violations()[0].invariant, "memory-replica-buffered");
}

TEST(InvariantChecker, DetectsLostCrashNotification) {
  // Simulate a buggy deployment where the slave's crash hook never reaches
  // the master: bound migrations keep pointing at a dead process and the
  // registry keeps replicas the OS already reclaimed.
  exec::TestbedConfig config = small_config(exec::Scheme::Dyrs);
  exec::Testbed tb(config);
  auto& checker = tb.enable_invariant_checks();
  tb.load_file("/in", gib(1));
  tb.master()->migrate_files(JobId(1), {"/in"}, core::EvictionMode::Explicit);
  tb.simulator().schedule_at(seconds(2), [&]() {
    dfs::DataNode* dn = tb.namenode().datanode(NodeId(1));
    dn->on_process_crash = nullptr;  // the notification is lost
    dn->crash_process();
  });
  tb.simulator().run_until(seconds(6));
  bool saw_dead_target = false;
  for (const auto& v : checker.violations()) {
    if (v.invariant == "bound-target-process-alive" ||
        v.invariant == "memory-replica-process-alive") {
      saw_dead_target = true;
    }
  }
  EXPECT_TRUE(saw_dead_target);
}

TEST(InvariantChecker, MasterlessSchemesRunMinimalChecks) {
  exec::Testbed tb(small_config(exec::Scheme::InputsInRam));
  auto& checker = tb.enable_invariant_checks();
  tb.load_file("/in", mib(512));
  wl::SortConfig sort;
  sort.input = mib(512);
  sort.platform_overhead = seconds(4);
  tb.submit(wl::sort_job("/in", sort));
  tb.run();
  EXPECT_GT(checker.checks_run(), 0);
  EXPECT_TRUE(checker.violations().empty());
}

}  // namespace
}  // namespace dyrs::faults
