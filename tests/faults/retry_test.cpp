// Transient-failure handling in the migration path: injected I/O errors are
// absorbed by slave-local retries with capped exponential backoff; a slave
// that exhausts its budget reports a permanent failure and the master
// re-targets the block at a surviving replica.
#include <gtest/gtest.h>

#include "dyrs/strategies.h"
#include "faults/fault_injector.h"
#include "testing/fixture.h"

namespace dyrs::faults {
namespace {

using dyrs::testing::MiniDfs;

struct RetryFixture : ::testing::Test {
  RetryFixture()
      : dfs({.num_nodes = 4,
             .disk_bw = mib_per_sec(64),
             .seek_alpha = 0.0,
             .replication = 3,
             .block_size = mib(64)}),
        injector(dfs.sim, *dfs.cluster, *dfs.namenode, /*seed=*/3) {}

  core::MasterConfig config() {
    core::MasterConfig c;
    c.slave.heartbeat_interval = seconds(1);
    c.slave.reference_block = mib(64);
    c.slave.retry.backoff = milliseconds(250);
    c.retarget_interval = milliseconds(500);
    return c;
  }

  MiniDfs dfs;
  FaultInjector injector;
};

TEST_F(RetryFixture, TransientErrorsRetryWithBackoffAndComplete) {
  auto master = core::make_dyrs(*dfs.cluster, *dfs.namenode, config());
  master->set_job_active_query([](JobId) { return true; });
  const auto& f = dfs.namenode->create_file("/in", mib(64) * 8);
  // Every migration read on every node fails during [0.5s, 2.5s): reads
  // finishing in the window burn an attempt, back off, and retry.
  FaultPlan plan;
  for (int n = 0; n < 4; ++n) {
    plan.io_errors(NodeId(n), milliseconds(500), milliseconds(2500), 1.0);
  }
  injector.install(plan);
  master->migrate_files(JobId(1), {"/in"}, core::EvictionMode::Explicit);
  dfs.sim.run_until(seconds(40));
  EXPECT_GT(master->migration_retries(), 0);
  EXPECT_EQ(master->pending_count(), 0u);
  EXPECT_EQ(master->bound_count(), 0u);
  for (BlockId b : f.blocks) EXPECT_TRUE(dfs.namenode->in_memory(b)) << b;
}

TEST_F(RetryFixture, BackoffDelaysGrowExponentially) {
  auto master = core::make_dyrs(*dfs.cluster, *dfs.namenode, config());
  master->set_job_active_query([](JobId) { return true; });
  const auto& f = dfs.namenode->create_file("/one", mib(64));
  const auto replicas = dfs.namenode->raw_replicas(f.blocks[0]);
  // Persistent errors everywhere: with a 64MiB block at 64MiB/s each
  // attempt takes ~1s plus backoff 0.25s, 0.5s, 1s... between attempts.
  FaultPlan plan;
  for (int n = 0; n < 4; ++n) plan.io_errors(NodeId(n), 0, seconds(60), 1.0);
  injector.install(plan);
  master->migrate_files(JobId(1), {"/one"}, core::EvictionMode::Explicit);
  // Binding happens on the t=1s pulse; the first attempt fails at ~2s and
  // the slave is then backing off.
  dfs.sim.run_until(milliseconds(2100));
  int backing_off = 0;
  for (NodeId n : replicas) backing_off += master->slave(n).backoff_count();
  EXPECT_EQ(backing_off, 1);
  EXPECT_EQ(master->migration_retries(), 1);
}

TEST_F(RetryFixture, PermanentFailureRetargetsSurvivingReplica) {
  auto master = core::make_dyrs(*dfs.cluster, *dfs.namenode, config());
  master->set_job_active_query([](JobId) { return true; });
  const auto& f = dfs.namenode->create_file("/one", mib(64));
  const BlockId block = f.blocks[0];
  const auto replicas = dfs.namenode->raw_replicas(block);
  ASSERT_EQ(replicas.size(), 3u);
  // Two of the three replica holders return I/O errors for the whole run;
  // only the last replica can serve the migration.
  const NodeId survivor = replicas[2];
  FaultPlan plan;
  plan.io_errors(replicas[0], 0, seconds(300), 1.0);
  plan.io_errors(replicas[1], 0, seconds(300), 1.0);
  injector.install(plan);
  master->migrate_files(JobId(1), {"/one"}, core::EvictionMode::Explicit);
  dfs.sim.run_until(seconds(120));
  EXPECT_EQ(master->migrations_completed(), 1);
  const auto locations = dfs.namenode->memory_locations(block);
  ASSERT_EQ(locations.size(), 1u);
  EXPECT_EQ(locations[0], survivor);
  // The block was never dropped: every exhausted budget re-queued it.
  EXPECT_EQ(master->migrations_requeued(), master->migration_permanent_failures());
  EXPECT_GT(master->migration_retries(), 0);
  // IoError cancels were recorded for the failing holders.
  bool saw_io_cancel = false;
  for (const auto& c : master->cancels()) {
    if (c.reason == core::CancelReason::IoError) saw_io_cancel = true;
  }
  EXPECT_EQ(saw_io_cancel, master->migration_permanent_failures() > 0);
}

TEST_F(RetryFixture, ExhaustedEverywhereStaysPendingNotDropped) {
  // All replicas permanently failing: the block must remain visible as
  // pending (or in backoff) rather than silently vanishing.
  auto master = core::make_dyrs(*dfs.cluster, *dfs.namenode, config());
  master->set_job_active_query([](JobId) { return true; });
  const auto& f = dfs.namenode->create_file("/one", mib(64));
  FaultPlan plan;
  for (int n = 0; n < 4; ++n) plan.io_errors(NodeId(n), 0, seconds(600), 1.0);
  injector.install(plan);
  master->migrate_files(JobId(1), {"/one"}, core::EvictionMode::Explicit);
  dfs.sim.run_until(seconds(120));
  EXPECT_EQ(master->migrations_completed(), 0);
  EXPECT_FALSE(dfs.namenode->in_memory(f.blocks[0]));
  // Still tracked somewhere: pending at the master or bound to a slave.
  const bool tracked = master->pending_count() + master->bound_count() > 0;
  EXPECT_TRUE(tracked);
  EXPECT_EQ(master->migration_permanent_failures(), 3);  // one per replica holder
}

}  // namespace
}  // namespace dyrs::faults
