// End-to-end integration tests: the paper's qualitative claims at reduced
// scale, run through the full stack (Testbed -> engine -> MiniDFS ->
// migration scheme -> cluster model).
#include <gtest/gtest.h>

#include <map>

#include "exec/testbed.h"
#include "workloads/sort.h"
#include "workloads/swim.h"

namespace dyrs {
namespace {

exec::TestbedConfig small_paper_config(exec::Scheme scheme, std::uint64_t seed = 1) {
  exec::TestbedConfig c;
  c.num_nodes = 5;
  c.disk_bandwidth = mib_per_sec(128);
  c.seek_alpha = 0.15;
  c.block_size = mib(128);
  c.replication = 3;
  c.placement_seed = seed;
  c.scheme = scheme;
  c.master.slave.reference_block = mib(128);
  return c;
}

double run_sort(exec::Scheme scheme, bool slow_node, Bytes input = gib(2),
                SimDuration lead = seconds(6)) {
  exec::Testbed tb(small_paper_config(scheme));
  if (slow_node) tb.add_persistent_interference(NodeId(0), 2);
  tb.load_file("/sort/in", input);
  wl::SortConfig sort;
  sort.input = input;
  sort.platform_overhead = lead;
  sort.reducers = 6;
  tb.submit(wl::sort_job("/sort/in", sort));
  tb.run();
  return tb.metrics().jobs()[0].duration_s();
}

TEST(EndToEnd, DyrsBeatsHdfsWithLeadTime) {
  const double hdfs = run_sort(exec::Scheme::Hdfs, false);
  const double dyrs = run_sort(exec::Scheme::Dyrs, false);
  EXPECT_LT(dyrs, hdfs * 0.95);
}

TEST(EndToEnd, InRamUpperBoundsDyrs) {
  const double ram = run_sort(exec::Scheme::InputsInRam, false);
  const double dyrs = run_sort(exec::Scheme::Dyrs, false);
  EXPECT_LE(ram, dyrs * 1.02);
}

TEST(EndToEnd, IgnemSuffersOnHeterogeneousCluster) {
  // The paper's central negative result: with a slow node, Ignem is worse
  // than DYRS (and can be worse than plain HDFS).
  const double dyrs = run_sort(exec::Scheme::Dyrs, true);
  const double ignem = run_sort(exec::Scheme::Ignem, true);
  EXPECT_GT(ignem, dyrs);
}

TEST(EndToEnd, DyrsToleratesSlowNode) {
  // Heterogeneity still costs something DYRS cannot fix (reduce-phase
  // writes land on the interfered disk too), but DYRS keeps its edge over
  // HDFS under the same conditions and degrades boundedly vs homogeneous.
  const double dyrs_heter = run_sort(exec::Scheme::Dyrs, true);
  const double hdfs_heter = run_sort(exec::Scheme::Hdfs, true);
  const double dyrs_homog = run_sort(exec::Scheme::Dyrs, false);
  EXPECT_LT(dyrs_heter, hdfs_heter);
  EXPECT_LT(dyrs_heter, dyrs_homog * 2.5);
}

TEST(EndToEnd, MoreLeadTimeMoreMemoryReads) {
  auto fraction_with_lead = [](SimDuration lead) {
    exec::Testbed tb(small_paper_config(exec::Scheme::Dyrs));
    tb.load_file("/in", gib(2));
    wl::SortConfig sort;
    sort.input = gib(2);
    sort.platform_overhead = seconds(1);
    sort.extra_lead_time = lead;
    tb.submit(wl::sort_job("/in", sort));
    tb.run();
    return tb.metrics().memory_read_fraction();
  };
  const double none = fraction_with_lead(0);
  const double some = fraction_with_lead(seconds(10));
  const double lots = fraction_with_lead(seconds(60));
  EXPECT_LE(none, some + 1e-9);
  EXPECT_LE(some, lots + 1e-9);
  EXPECT_GT(lots, 0.9);
}

TEST(EndToEnd, MigrationRespectsMemoryLimit) {
  auto config = small_paper_config(exec::Scheme::Dyrs);
  config.master.slave.memory_limit = mib(128);  // one block per slave
  exec::Testbed tb(config);
  tb.load_file("/in", gib(2));
  wl::SortConfig sort;
  sort.input = gib(2);
  sort.platform_overhead = seconds(30);
  tb.submit(wl::sort_job("/in", sort));
  tb.run();
  // Job completes; pinned migrated memory never exceeded the limit.
  EXPECT_EQ(tb.metrics().jobs().size(), 1u);
  for (NodeId id : tb.cluster().node_ids()) {
    const auto& series = tb.cluster().node(id).memory().usage_series();
    if (series.empty()) continue;
    EXPECT_LE(series.step_max(0, tb.simulator().now()), static_cast<double>(mib(128)));
  }
}

TEST(EndToEnd, BuffersDrainAfterWorkloadEnds) {
  // Pro-active eviction: once all jobs finished, no migrated data should
  // stay pinned (implicit eviction + job-finish eviction).
  exec::Testbed tb(small_paper_config(exec::Scheme::Dyrs));
  tb.load_file("/in", gib(1));
  exec::JobSpec job;
  job.name = "scan";
  job.input_files = {"/in"};
  job.selectivity = 0.1;
  job.num_reducers = 2;
  job.platform_overhead = seconds(10);
  tb.submit(job);
  tb.run();
  for (NodeId id : tb.cluster().node_ids()) {
    EXPECT_EQ(tb.cluster().node(id).memory().pinned(), 0) << "node " << id;
  }
  EXPECT_EQ(tb.namenode().memory_replica_count(), 0u);
}

TEST(EndToEnd, SlaveCrashMidWorkloadOnlyCostsSpeedup) {
  exec::Testbed tb(small_paper_config(exec::Scheme::Dyrs));
  tb.load_file("/in", gib(2));
  wl::SortConfig sort;
  sort.input = gib(2);
  sort.platform_overhead = seconds(8);
  tb.submit(wl::sort_job("/in", sort));
  tb.simulator().schedule_at(seconds(4), [&]() {
    tb.namenode().datanode(NodeId(1))->crash_process();
  });
  tb.simulator().schedule_at(seconds(5), [&]() {
    tb.namenode().datanode(NodeId(1))->restart_process();
  });
  tb.run();
  ASSERT_EQ(tb.metrics().jobs().size(), 1u);  // completed despite the crash
  EXPECT_EQ(tb.cluster().node(NodeId(1)).memory().pinned(), 0);
}

TEST(EndToEnd, MasterFailoverMidWorkloadOnlyCostsSpeedup) {
  exec::Testbed tb(small_paper_config(exec::Scheme::Dyrs));
  tb.load_file("/in", gib(2));
  wl::SortConfig sort;
  sort.input = gib(2);
  sort.platform_overhead = seconds(8);
  tb.submit(wl::sort_job("/in", sort));
  tb.simulator().schedule_at(seconds(4), [&]() { tb.master()->master_failover(); });
  tb.run();
  ASSERT_EQ(tb.metrics().jobs().size(), 1u);
}

TEST(EndToEnd, DeterministicAcrossRuns) {
  auto run_once = [] {
    exec::Testbed tb(small_paper_config(exec::Scheme::Dyrs, /*seed=*/9));
    tb.add_persistent_interference(NodeId(0), 2);
    tb.load_file("/in", gib(2));
    wl::SortConfig sort;
    sort.input = gib(2);
    tb.submit(wl::sort_job("/in", sort));
    tb.run();
    return tb.metrics().jobs()[0].duration_s();
  };
  EXPECT_DOUBLE_EQ(run_once(), run_once());
}

TEST(EndToEnd, ConcurrentJobsAllServed) {
  wl::SwimConfig swim;
  swim.num_jobs = 25;
  swim.total_input = gib(10);
  swim.max_input = gib(3);
  auto workload = wl::SwimWorkload::generate(swim);
  exec::Testbed tb(small_paper_config(exec::Scheme::Dyrs));
  exec::JobSpec base;
  base.platform_overhead = seconds(4);
  workload.install(tb, base);
  tb.run();
  EXPECT_EQ(tb.metrics().jobs().size(), 25u);
  // Every map task read its full block from somewhere.
  for (const auto& t : tb.metrics().tasks()) {
    if (t.phase != exec::TaskPhase::Map) continue;
    EXPECT_GT(t.finished, t.started);
  }
}

// Scheme sweep: for every scheme the same workload completes and accounts
// cleanly (no leaked pins, no leftover pending migrations).
class SchemeSweepTest : public ::testing::TestWithParam<exec::Scheme> {};

TEST_P(SchemeSweepTest, WorkloadCompletesCleanly) {
  const exec::Scheme scheme = GetParam();
  exec::Testbed tb(small_paper_config(scheme));
  tb.add_persistent_interference(NodeId(0), 2);
  tb.load_file("/a", gib(1));
  tb.load_file("/b", mib(384));
  exec::JobSpec job;
  job.name = "a";
  job.input_files = {"/a"};
  job.selectivity = 0.2;
  job.num_reducers = 2;
  job.platform_overhead = seconds(4);
  tb.submit(job);
  job.name = "b";
  job.input_files = {"/b"};
  tb.submit_at(job, seconds(3));
  tb.run();
  EXPECT_EQ(tb.metrics().jobs().size(), 2u);
  if (tb.master() != nullptr) {
    EXPECT_EQ(tb.master()->pending_count(), 0u);
    for (NodeId id : tb.cluster().node_ids()) {
      EXPECT_EQ(tb.cluster().node(id).memory().pinned(), 0) << "node " << id;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, SchemeSweepTest,
                         ::testing::Values(exec::Scheme::Hdfs, exec::Scheme::InputsInRam,
                                           exec::Scheme::Ignem, exec::Scheme::Dyrs,
                                           exec::Scheme::NaiveBalancer),
                         [](const ::testing::TestParamInfo<exec::Scheme>& info) {
                           std::string name = to_string(info.param);
                           for (char& c : name) {
                             if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace dyrs
