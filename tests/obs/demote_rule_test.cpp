// The `demote` invariant rule: a mig_demote acts on settled data, so the
// block must have a prior mig_complete on that node, and the move must be
// strictly downward through known tiers. Synthetic traces pin down the
// rule in isolation; end-to-end coverage (real demoting runs coming out
// clean) lives in the tier eviction tests and the fig07 capacity sweep.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/trace.h"
#include "obs/trace_invariants.h"
#include "obs/trace_reader.h"

namespace dyrs::obs {
namespace {

TraceEvent complete(SimTime at, int block, int node) {
  TraceEvent e(at, "mig_complete");
  e.with("block", block).with("node", node).with("size", static_cast<std::int64_t>(mib(256)));
  return e;
}

TraceEvent demote(SimTime at, int block, int node, const std::string& from,
                  const std::string& to) {
  TraceEvent e(at, "mig_demote");
  e.with("block", block).with("node", node).with("from", from).with("to", to)
      .with("size", static_cast<std::int64_t>(mib(256)));
  return e;
}

std::size_t demote_violations(const InvariantReport& report) {
  std::size_t n = 0;
  for (const auto& v : report.violations) {
    if (v.rule == "demote") ++n;
  }
  return n;
}

InvariantReport check(std::vector<TraceEvent> events) {
  return TraceInvariants{}.check(TraceReader(std::move(events)));
}

TEST(DemoteRule, DownwardDemoteAfterCompletePasses) {
  const auto report =
      check({complete(10, 7, 0), demote(20, 7, 0, "memory", "ssd")});
  EXPECT_EQ(report.demotions, 1u);
  EXPECT_EQ(demote_violations(report), 0u) << report.summary();
}

TEST(DemoteRule, WholeChainDownToDiskPasses) {
  // memory -> ssd -> disk, and the memory -> disk shortcut (no SSD room).
  const auto report = check({complete(10, 7, 0), demote(20, 7, 0, "memory", "ssd"),
                             demote(30, 7, 0, "ssd", "disk"), complete(12, 8, 0),
                             demote(40, 8, 0, "memory", "disk")});
  EXPECT_EQ(report.demotions, 3u);
  EXPECT_EQ(demote_violations(report), 0u) << report.summary();
}

TEST(DemoteRule, UpwardMoveFlagged) {
  const auto report =
      check({complete(10, 7, 0), demote(20, 7, 0, "ssd", "memory")});
  EXPECT_EQ(demote_violations(report), 1u);
}

TEST(DemoteRule, SelfMoveFlagged) {
  const auto report =
      check({complete(10, 7, 0), demote(20, 7, 0, "ssd", "ssd")});
  EXPECT_EQ(demote_violations(report), 1u);
}

TEST(DemoteRule, UnknownTierFlagged) {
  const auto report =
      check({complete(10, 7, 0), demote(20, 7, 0, "tape", "disk")});
  EXPECT_EQ(demote_violations(report), 1u);
}

TEST(DemoteRule, DemoteWithoutPriorCompleteFlagged) {
  const auto report = check({demote(20, 7, 0, "memory", "ssd")});
  EXPECT_EQ(demote_violations(report), 1u);
}

TEST(DemoteRule, CompleteOnOtherNodeDoesNotCount) {
  // Block 7 settled on node 1; a demote on node 0 is acting on data that
  // never arrived there.
  const auto report =
      check({complete(10, 7, 1), demote(20, 7, 0, "memory", "ssd")});
  EXPECT_EQ(demote_violations(report), 1u);
}

}  // namespace
}  // namespace dyrs::obs
