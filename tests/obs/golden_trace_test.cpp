// Golden-trace regression: a small fixed-seed DYRS sort is regenerated and
// compared byte-for-byte against the committed trace under tests/obs/golden/
// — any change to event vocabulary, field order, number formatting, or
// scheduling order shows up as a diff, not as a silently shifted aggregate.
// The same golden trace doubles as the oracle's fixture: it must pass the
// invariant checker clean (strict open-lifecycle mode included), and each
// class of hand-corrupted variant must be caught.
//
// To refresh after an intentional behavior change:
//   DYRS_REGEN_GOLDEN=1 ./build/tests/obs_test --gtest_filter='GoldenTrace.*'
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "exec/testbed.h"
#include "obs/trace_invariants.h"
#include "obs/trace_reader.h"
#include "workloads/sort.h"

namespace dyrs::obs {
namespace {

const char* golden_path() { return DYRS_GOLDEN_DIR "/sort_small.jsonl"; }

/// The fixed scenario behind the golden file: 1GiB DYRS sort on 5 nodes,
/// seeded placement, no faults — every migration lifecycle drains to a
/// terminal event before the run ends.
std::string generate_trace() {
  exec::TestbedConfig config;
  config.num_nodes = 5;
  config.disk_bandwidth = mib_per_sec(128);
  config.block_size = mib(128);
  config.scheme = exec::Scheme::Dyrs;
  config.master.slave.reference_block = mib(128);
  config.placement_seed = 23;
  exec::Testbed tb(config);
  MemorySink& sink = tb.trace_to_memory();
  tb.load_file("/golden/in", gib(1));
  wl::SortConfig sort;
  sort.input = gib(1);
  sort.platform_overhead = seconds(5);
  sort.reducers = 4;
  tb.submit(wl::sort_job("/golden/in", sort));
  tb.run();

  std::string out;
  for (const TraceEvent& e : sink.events()) {
    out += to_json(e);
    out += "\n";
  }
  return out;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

std::vector<TraceEvent> golden_events() { return read_jsonl_file(golden_path()); }

/// Index of the first event satisfying `pred`; fails the test when absent.
template <typename Pred>
std::size_t find_event(const std::vector<TraceEvent>& events, Pred pred) {
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (pred(events[i])) return i;
  }
  ADD_FAILURE() << "expected event not present in golden trace";
  return 0;
}

bool has_rule(const InvariantReport& report, const std::string& rule) {
  for (const auto& v : report.violations) {
    if (v.rule == rule) return true;
  }
  return false;
}

TEST(GoldenTrace, RegeneratesByteIdentical) {
  const std::string fresh = generate_trace();
  ASSERT_FALSE(fresh.empty());
  if (std::getenv("DYRS_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(golden_path(), std::ios::binary);
    ASSERT_TRUE(out.good()) << "cannot write " << golden_path();
    out << fresh;
    GTEST_SKIP() << "regenerated " << golden_path();
  }
  const std::string golden = read_file(golden_path());
  ASSERT_FALSE(golden.empty()) << "missing " << golden_path()
                               << " — run once with DYRS_REGEN_GOLDEN=1";
  EXPECT_EQ(fresh, golden) << "trace drifted from golden; if intentional, "
                              "regenerate with DYRS_REGEN_GOLDEN=1";
}

TEST(GoldenTrace, PassesInvariantsIncludingStrictOpenCheck) {
  TraceReader reader(golden_events());
  TraceInvariants strict;
  strict.flag_open_lifecycles = true;  // the scenario drains, so demand it
  const InvariantReport report = strict.check(reader);
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_EQ(report.open_at_end, 0u);
  EXPECT_GT(report.lifecycles_closed, 0u);
  EXPECT_TRUE(report.memory_read_rule_active);
}

// --- each corruption class must be caught -------------------------------

TEST(GoldenTrace, OracleCatchesDuplicateTerminal) {
  std::vector<TraceEvent> events = golden_events();
  const std::size_t i =
      find_event(events, [](const TraceEvent& e) { return e.type == "mig_complete"; });
  events.insert(events.begin() + i + 1, events[i]);  // complete the same block twice
  const InvariantReport report = TraceInvariants{}.check(TraceReader(std::move(events)));
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(has_rule(report, "terminal")) << report.summary();
}

TEST(GoldenTrace, OracleCatchesTamperedQueueWait) {
  std::vector<TraceEvent> events = golden_events();
  const std::size_t i =
      find_event(events, [](const TraceEvent& e) { return e.type == "mig_bind"; });
  for (auto& f : events[i].fields) {
    if (f.key == "wait_us") f.i += 17;  // no longer equals bind time - enqueue time
  }
  const InvariantReport report = TraceInvariants{}.check(TraceReader(std::move(events)));
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(has_rule(report, "queue-wait")) << report.summary();
}

TEST(GoldenTrace, OracleCatchesNegativeQueueWait) {
  std::vector<TraceEvent> events = golden_events();
  const std::size_t i =
      find_event(events, [](const TraceEvent& e) { return e.type == "mig_bind"; });
  for (auto& f : events[i].fields) {
    if (f.key == "wait_us") f.i = -1;
  }
  const InvariantReport report = TraceInvariants{}.check(TraceReader(std::move(events)));
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(has_rule(report, "queue-wait")) << report.summary();
}

TEST(GoldenTrace, OracleCatchesTimeGoingBackwards) {
  std::vector<TraceEvent> events = golden_events();
  ASSERT_GT(events.size(), 2u);
  events[events.size() / 2].at = events[0].at - 5;  // mid-trace event predates start
  const InvariantReport report = TraceInvariants{}.check(TraceReader(std::move(events)));
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(has_rule(report, "order")) << report.summary();
}

TEST(GoldenTrace, OracleCatchesBindBeforeEnqueue) {
  std::vector<TraceEvent> events = golden_events();
  const std::size_t bind =
      find_event(events, [](const TraceEvent& e) { return e.type == "mig_bind"; });
  const std::int64_t block = events[bind].i64("block");
  const std::size_t enq = find_event(events, [block](const TraceEvent& e) {
    return e.type == "mig_enqueue" && e.i64("block") == block;
  });
  ASSERT_LT(enq, bind);
  std::swap(events[enq], events[bind]);  // lifecycle events for one block reordered
  const InvariantReport report = TraceInvariants{}.check(TraceReader(std::move(events)));
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(has_rule(report, "order")) << report.summary();
}

TEST(GoldenTrace, OracleCatchesBindInsideDownFaultWindow) {
  std::vector<TraceEvent> events = golden_events();
  const std::size_t bind =
      find_event(events, [](const TraceEvent& e) { return e.type == "mig_bind"; });
  TraceEvent crash(events[bind].at, "fault");
  crash.with("kind", "process-crash").with("node", events[bind].i64("node")).with("phase", "start");
  events.insert(events.begin() + bind, crash);  // node goes down, then gets the bind
  const InvariantReport report = TraceInvariants{}.check(TraceReader(std::move(events)));
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(has_rule(report, "live-bind")) << report.summary();
}

TEST(GoldenTrace, OracleCatchesMemoryReadWithoutCompletion) {
  std::vector<TraceEvent> events = golden_events();
  const std::size_t read = find_event(events, [](const TraceEvent& e) {
    const std::string medium = e.str("medium");
    return e.type == "read_done" && (medium == "local-memory" || medium == "remote-memory");
  });
  const std::int64_t block = events[read].i64("block");
  const std::int64_t node = events[read].i64("node");
  const std::size_t complete = find_event(events, [block, node](const TraceEvent& e) {
    return e.type == "mig_complete" && e.i64("block") == block && e.i64("node") == node;
  });
  ASSERT_LT(complete, read);
  events.erase(events.begin() + complete);  // the read's replica was never made
  const InvariantReport report = TraceInvariants{}.check(TraceReader(std::move(events)));
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(has_rule(report, "memory-read")) << report.summary();
}

TEST(GoldenTrace, OracleCatchesDroppedTerminalInStrictMode) {
  std::vector<TraceEvent> events = golden_events();
  std::size_t last_terminal = events.size();
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (events[i].type == "mig_complete" || events[i].type == "mig_abort") last_terminal = i;
  }
  ASSERT_LT(last_terminal, events.size());
  events.erase(events.begin() + last_terminal);  // that lifecycle never closes

  // Tolerant default: an open lifecycle at end of trace is counted, not
  // flagged — partial traces (mid-run snapshots) are legal.
  TraceReader reader{std::vector<TraceEvent>(events)};
  const InvariantReport tolerant = TraceInvariants{}.check(reader);
  EXPECT_EQ(tolerant.open_at_end, 1u);

  // Strict mode (used for drained scenarios like this one) flags it.
  TraceInvariants strict;
  strict.flag_open_lifecycles = true;
  const InvariantReport report = strict.check(TraceReader(std::move(events)));
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(has_rule(report, "terminal")) << report.summary();
}

}  // namespace
}  // namespace dyrs::obs
