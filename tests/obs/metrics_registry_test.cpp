#include "obs/metrics_registry.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

namespace dyrs::obs {
namespace {

TEST(Counter, IncAndAdd) {
  Counter c;
  EXPECT_EQ(c.value(), 0);
  c.inc();
  c.add(41);
  EXPECT_EQ(c.value(), 42);
}

TEST(Gauge, SetOverwrites) {
  Gauge g;
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  g.set(3.5);
  g.set(-1.25);
  EXPECT_DOUBLE_EQ(g.value(), -1.25);
}

TEST(Histogram, FeedsBothMomentsAndSamples) {
  Histogram h;
  for (double v : {1.0, 2.0, 3.0, 4.0}) h.add(v);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.stat().mean(), 2.5);
  EXPECT_DOUBLE_EQ(h.stat().min(), 1.0);
  EXPECT_DOUBLE_EQ(h.stat().max(), 4.0);
  EXPECT_NEAR(h.samples().quantile(0.5), 2.5, 1e-12);
}

TEST(MetricsRegistry, AccessorsCreateOnceAndStayStable) {
  MetricsRegistry r;
  Counter& c1 = r.counter("a.count");
  c1.inc();
  Counter& c2 = r.counter("a.count");
  EXPECT_EQ(&c1, &c2);
  EXPECT_EQ(c2.value(), 1);

  Gauge& g1 = r.gauge("a.level");
  EXPECT_EQ(&g1, &r.gauge("a.level"));
  Histogram& h1 = r.histogram("a.dist");
  EXPECT_EQ(&h1, &r.histogram("a.dist"));

  // Same name in different instrument families is allowed and distinct.
  r.counter("same");
  r.gauge("same");
  EXPECT_NE(static_cast<const void*>(r.find_counter("same")),
            static_cast<const void*>(r.find_gauge("same")));
}

TEST(MetricsRegistry, FindDoesNotCreate) {
  MetricsRegistry r;
  EXPECT_EQ(r.find_counter("x"), nullptr);
  EXPECT_EQ(r.find_gauge("x"), nullptr);
  EXPECT_EQ(r.find_histogram("x"), nullptr);
  Counter& c = r.counter("x");
  EXPECT_EQ(r.find_counter("x"), &c);
  // find_counter must not have created gauges/histograms along the way.
  EXPECT_EQ(r.find_gauge("x"), nullptr);
  EXPECT_EQ(r.find_histogram("x"), nullptr);
}

TEST(MetricsRegistry, DumpIsNameOrderedAndDeterministic) {
  MetricsRegistry r;
  // Registered out of order on purpose; dump must sort by name.
  r.counter("z.last").add(7);
  r.counter("a.first").add(1);
  r.gauge("m.mid").set(0.5);
  r.histogram("empty.dist");
  Histogram& h = r.histogram("d.dist");
  for (double v : {1.0, 2.0, 3.0}) h.add(v);

  std::ostringstream os;
  r.dump(os);
  EXPECT_EQ(os.str(),
            "a.first counter 1\n"
            "z.last counter 7\n"
            "m.mid gauge 0.5\n"
            "d.dist histogram count=3 mean=2 min=1 max=3 p50=2 p99=2.98\n"
            "empty.dist histogram count=0\n");

  std::ostringstream again;
  r.dump(again);
  EXPECT_EQ(os.str(), again.str());
}

TEST(MetricsRegistry, DumpRestoresStreamFormatting) {
  MetricsRegistry r;
  r.gauge("g").set(1.0 / 3.0);
  std::ostringstream os;
  os.precision(3);
  r.dump(os);
  EXPECT_EQ(os.precision(), 3);
}

}  // namespace
}  // namespace dyrs::obs
