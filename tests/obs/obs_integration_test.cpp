// End-to-end observability: the instrumented testbed layers must produce
// (a) byte-identical traces across same-seed runs — the determinism
// contract CI leans on — and (b) a well-formed migration-lifecycle span
// for every completed migration, registry counters agreeing with the
// engine/master aggregates, even under an injected fault plan.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "exec/testbed.h"
#include "faults/fault_plan.h"
#include "obs/trace_reader.h"
#include "workloads/sort.h"

namespace dyrs::obs {
namespace {

exec::TestbedConfig small_config(exec::Scheme scheme) {
  exec::TestbedConfig config;
  config.num_nodes = 5;
  config.disk_bandwidth = mib_per_sec(128);
  config.block_size = mib(128);
  config.scheme = scheme;
  config.master.slave.reference_block = mib(128);
  return config;
}

void submit_sort(exec::Testbed& tb, Bytes input) {
  tb.load_file("/obs/in", input);
  wl::SortConfig sort;
  sort.input = input;
  sort.platform_overhead = seconds(5);
  sort.reducers = 4;
  tb.submit(wl::sort_job("/obs/in", sort));
}

/// Runs a seeded sort with tracing + sampling and returns the serialized
/// trace — the exact bytes a JSONL sink would write.
std::string traced_run(std::uint64_t seed) {
  exec::TestbedConfig config = small_config(exec::Scheme::Dyrs);
  config.placement_seed = seed;
  exec::Testbed tb(config);
  MemorySink& sink = tb.trace_to_memory();
  tb.enable_sampling();
  submit_sort(tb, gib(1));
  tb.run();

  std::string out;
  for (const TraceEvent& e : sink.events()) {
    out += to_json(e);
    out += "\n";
  }
  return out;
}

TEST(ObsIntegration, SameSeedRunsProduceByteIdenticalTraces) {
  const std::string a = traced_run(7);
  const std::string b = traced_run(7);
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);
}

TEST(ObsIntegration, DifferentSeedsProduceDifferentTraces) {
  // Placement changes with the seed, so the lifecycle stream must too —
  // guards against the trace accidentally ignoring the scenario.
  EXPECT_NE(traced_run(7), traced_run(8));
}

TEST(ObsIntegration, SpansAndCountersMatchAggregates) {
  exec::Testbed tb(small_config(exec::Scheme::Dyrs));
  MemorySink& sink = tb.trace_to_memory();
  submit_sort(tb, gib(1));
  tb.run();

  TraceReader reader(sink.events());
  ASSERT_NE(tb.master(), nullptr);
  const long completed = tb.master()->migrations_completed();
  EXPECT_GT(completed, 0);
  EXPECT_EQ(reader.count_of("mig_complete"), static_cast<std::size_t>(completed));
  EXPECT_EQ(reader.complete_spans().size(), static_cast<std::size_t>(completed));

  // Registry counters mirror the aggregates the layers already keep.
  const obs::MetricsRegistry& reg = tb.registry();
  ASSERT_NE(reg.find_counter("dyrs.migrations.completed"), nullptr);
  EXPECT_EQ(reg.find_counter("dyrs.migrations.completed")->value(), completed);
  ASSERT_NE(reg.find_counter("exec.jobs.completed"), nullptr);
  EXPECT_EQ(reg.find_counter("exec.jobs.completed")->value(),
            static_cast<std::int64_t>(tb.metrics().jobs().size()));
  ASSERT_NE(reg.find_histogram("dyrs.migration.transfer_s"), nullptr);
  EXPECT_EQ(reg.find_histogram("dyrs.migration.transfer_s")->count(),
            static_cast<std::size_t>(completed));
  EXPECT_EQ(reader.count_of("job_done"), tb.metrics().jobs().size());
}

TEST(ObsIntegration, ChaosRunHasASpanForEveryCompletedMigration) {
  exec::TestbedConfig config = small_config(exec::Scheme::Dyrs);
  config.fault_seed = 19;
  config.master.slave.retry.backoff = milliseconds(250);
  exec::Testbed tb(config);
  MemorySink& sink = tb.trace_to_memory();

  faults::RandomPlanOptions opts;
  opts.num_nodes = config.num_nodes;
  opts.start = seconds(2);
  opts.horizon = seconds(90);
  opts.incidents = 4;
  opts.io_error_windows = 3;
  opts.degradation_windows = 2;
  tb.install_fault_plan(faults::FaultPlan::random(opts, 19));

  submit_sort(tb, gib(1));
  tb.run(/*max_time=*/hours(2));

  TraceReader reader(sink.events());
  ASSERT_NE(tb.master(), nullptr);
  const long completed = tb.master()->migrations_completed();
  EXPECT_EQ(reader.count_of("mig_complete"), static_cast<std::size_t>(completed));

  // Every completed span is well-formed. Spans whose enqueue predates the
  // trace start (requeues after a master failover re-insert pending state
  // without re-emitting mig_enqueue) are exempt from the full-ordering check
  // but must still carry a node and a finish time.
  std::size_t completed_spans = 0;
  for (const MigrationSpan& s : reader.migration_spans()) {
    if (!s.completed) continue;
    ++completed_spans;
    EXPECT_TRUE(s.node.valid());
    EXPECT_GE(s.finished_at, 0);
    if (s.enqueued_at >= 0) {
      EXPECT_TRUE(s.complete()) << "block " << s.block.value();
    }
  }
  EXPECT_EQ(completed_spans, static_cast<std::size_t>(completed));

  // Retries show up as retry events. The master's tally only sums slaves
  // still alive, so the trace (which never forgets) may exceed it when a
  // retried slave later crashed.
  EXPECT_GE(reader.count_of("mig_transfer_retry"),
            static_cast<std::size_t>(tb.master()->migration_retries()));
}

}  // namespace
}  // namespace dyrs::obs
