// Policy oracle: the opt-in TraceInvariants rule that replays Algorithm 1's
// earliest-finish targeting from sampled `nodeN.dyrs.est_s_per_block` probe
// values and the loads a trace implies, flagging mig_target choices that
// contradict the sampled estimates. Synthetic traces pin down the rule's
// exact behaviour; a real DYRS sim run with sampling must come out clean.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "exec/testbed.h"
#include "obs/trace_invariants.h"
#include "obs/trace_reader.h"
#include "workloads/sort.h"

namespace dyrs::obs {
namespace {

TraceEvent sample(SimTime at, int node, double est_s) {
  TraceEvent e(at, "sample");
  e.with("name", "node" + std::to_string(node) + ".dyrs.est_s_per_block").with("value", est_s);
  return e;
}

TraceEvent enqueue(SimTime at, int block, Bytes size, const char* replicas) {
  TraceEvent e(at, "mig_enqueue");
  e.with("block", block).with("job", 1).with("size", static_cast<std::int64_t>(size))
      .with("replicas", replicas);
  return e;
}

TraceEvent target(SimTime at, int block, int node) {
  TraceEvent e(at, "mig_target");
  e.with("block", block).with("node", node).with("sec_per_byte", 1e-9);
  return e;
}

TraceInvariants policy_oracle(double margin = 0.5) {
  TraceInvariants oracle;
  oracle.check_policy = true;
  oracle.policy_margin = margin;
  oracle.policy_reference_block = mib(256);
  return oracle;
}

std::size_t policy_violations(const InvariantReport& report) {
  std::size_t n = 0;
  for (const auto& v : report.violations) {
    if (v.rule == "policy") ++n;
  }
  return n;
}

TEST(PolicyOracle, FlagsTargetContradictingSampledEstimates) {
  // Node 0 is 50x faster per block and both are idle — targeting node 1
  // contradicts the earliest-finish rule way beyond any margin.
  std::vector<TraceEvent> events = {sample(0, 0, 2.0), sample(0, 1, 100.0),
                                    enqueue(10, 7, mib(256), "0,1"), target(20, 7, 1)};
  const InvariantReport report = policy_oracle().check(TraceReader(std::move(events)));
  EXPECT_EQ(report.policy_checked, 1u);
  EXPECT_EQ(policy_violations(report), 1u);
  ASSERT_FALSE(report.violations.empty());
  EXPECT_EQ(report.violations[0].rule, "policy");
  EXPECT_EQ(report.violations[0].block, BlockId(7));
  EXPECT_EQ(report.violations[0].node, NodeId(1));
}

TEST(PolicyOracle, AcceptsEarliestFinishChoice) {
  std::vector<TraceEvent> events = {sample(0, 0, 2.0), sample(0, 1, 100.0),
                                    enqueue(10, 7, mib(256), "0,1"), target(20, 7, 0)};
  const InvariantReport report = policy_oracle().check(TraceReader(std::move(events)));
  EXPECT_EQ(report.policy_checked, 1u);
  EXPECT_EQ(policy_violations(report), 0u);
}

TEST(PolicyOracle, AccountsForLoadAlreadyTargetedElsewhere) {
  // Node 0's estimate is 3x better, but three 256MiB blocks are already
  // targeted at node 0, so the fourth finishes sooner on node 1:
  //   node0: 2s/block * 4 blocks queued = 8s,  node1: 6s * 1 = 6s.
  std::vector<TraceEvent> events = {
      sample(0, 0, 2.0),           sample(0, 1, 6.0),
      enqueue(10, 1, mib(256), "0,1"), target(11, 1, 0),
      enqueue(12, 2, mib(256), "0,1"), target(13, 2, 0),
      enqueue(14, 3, mib(256), "0,1"), target(15, 3, 0),
      enqueue(16, 4, mib(256), "0,1"), target(17, 4, 1)};
  const InvariantReport report = policy_oracle(0.1).check(TraceReader(std::move(events)));
  EXPECT_EQ(report.policy_checked, 4u);
  EXPECT_EQ(policy_violations(report), 0u) << report.summary();

  // The same final choice with an idle node 0 would be a contradiction.
  std::vector<TraceEvent> bad = {sample(0, 0, 2.0), sample(0, 1, 6.0),
                                 enqueue(16, 4, mib(256), "0,1"), target(17, 4, 1)};
  const InvariantReport bad_report = policy_oracle(0.1).check(TraceReader(std::move(bad)));
  EXPECT_EQ(policy_violations(bad_report), 1u);
}

TEST(PolicyOracle, SkipsTargetsWithoutEstimatorSnapshot) {
  // No sample events at all: nothing can be scored, nothing is flagged.
  std::vector<TraceEvent> events = {enqueue(10, 7, mib(256), "0,1"), target(20, 7, 1)};
  const InvariantReport report = policy_oracle().check(TraceReader(std::move(events)));
  EXPECT_EQ(report.policy_checked, 0u);
  EXPECT_EQ(report.policy_skipped, 1u);
  EXPECT_EQ(policy_violations(report), 0u);
}

TEST(PolicyOracle, ExcludesAvoidedAndDownNodes) {
  // Node 0 looks better but was put on the block's avoid list by a
  // requeue; node 2 looks best of all but sits inside a down-fault window.
  TraceEvent requeue(11, "mig_requeue");
  requeue.with("block", 7).with("avoid", 0);
  TraceEvent crash(5, "fault");
  crash.with("kind", "process-crash").with("node", 2).with("phase", "start");
  std::vector<TraceEvent> events = {sample(0, 0, 1.0),
                                    sample(0, 1, 50.0),
                                    sample(0, 2, 0.5),
                                    crash,
                                    enqueue(10, 7, mib(256), "0,1,2"),
                                    requeue,
                                    target(20, 7, 1)};
  const InvariantReport report = policy_oracle().check(TraceReader(std::move(events)));
  EXPECT_EQ(report.policy_checked, 1u);
  EXPECT_EQ(policy_violations(report), 0u) << report.summary();
}

TEST(PolicyOracle, CleanOnRealDyrsSimTrace) {
  // A real DYRS run with sampling enabled: the live selector and the
  // replayed one see the same estimator (modulo sampling cadence), so the
  // oracle must not produce false positives. The second job lands after
  // samples exist, guaranteeing some targets actually get scored.
  exec::TestbedConfig config;
  config.num_nodes = 5;
  config.disk_bandwidth = mib_per_sec(128);
  config.block_size = mib(128);
  config.scheme = exec::Scheme::Dyrs;
  config.master.slave.reference_block = mib(256);
  config.placement_seed = 23;
  exec::Testbed tb(config);
  MemorySink& sink = tb.trace_to_memory();
  tb.enable_sampling();
  tb.load_file("/oracle/a", gib(1));
  tb.load_file("/oracle/b", gib(1));
  wl::SortConfig sort;
  sort.input = gib(1);
  sort.platform_overhead = seconds(5);
  sort.reducers = 4;
  tb.submit(wl::sort_job("/oracle/a", sort));
  tb.submit_at(wl::sort_job("/oracle/b", sort), seconds(30));
  tb.run();

  TraceInvariants oracle;
  oracle.check_policy = true;
  const InvariantReport report = oracle.check(TraceReader(sink.events()));
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_GT(report.policy_checked, 0u);
}

}  // namespace
}  // namespace dyrs::obs
