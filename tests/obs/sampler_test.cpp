#include "obs/sampler.h"

#include <gtest/gtest.h>

#include <memory>

#include "common/check.h"
#include "obs/metrics_registry.h"
#include "obs/trace.h"
#include "sim/simulator.h"

namespace dyrs::obs {
namespace {

TEST(PeriodicSampler, TicksOnCadenceAndRecordsSeries) {
  sim::Simulator sim;
  MetricsRegistry registry;
  PeriodicSampler sampler(sim, ObsContext(&registry, nullptr), seconds(1));

  int calls = 0;
  sampler.add_probe("p", [&calls]() { return static_cast<double>(++calls); });
  sampler.start();
  EXPECT_TRUE(sampler.running());
  sim.run_until(milliseconds(3500));

  const TimeSeries& ts = sampler.series("p");
  ASSERT_EQ(ts.size(), 3u);  // first sample one cadence in, none at t=0
  EXPECT_EQ(ts.points()[0].time, seconds(1));
  EXPECT_EQ(ts.points()[2].time, seconds(3));
  EXPECT_DOUBLE_EQ(ts.points()[2].value, 3.0);

  // The registry gauge mirrors the latest value.
  const Gauge* g = registry.find_gauge("p");
  ASSERT_NE(g, nullptr);
  EXPECT_DOUBLE_EQ(g->value(), 3.0);

  sampler.stop();
  EXPECT_FALSE(sampler.running());
  sim.run_until(seconds(10));
  EXPECT_EQ(sampler.series("p").size(), 3u);  // no ticks after stop
}

TEST(PeriodicSampler, EmitsOneSampleEventPerProbePerTick) {
  sim::Simulator sim;
  Tracer tracer;
  MemorySink sink;
  tracer.set_sink(&sink);
  PeriodicSampler sampler(sim, ObsContext(nullptr, &tracer), seconds(2));
  sampler.add_probe("a", []() { return 1.5; });
  sampler.add_probe("b", []() { return 2.5; });
  sampler.start();
  sim.run_until(seconds(4));

  ASSERT_EQ(sink.events().size(), 4u);  // 2 ticks x 2 probes
  EXPECT_EQ(sink.events()[0].type, "sample");
  EXPECT_EQ(sink.events()[0].str("name"), "a");
  EXPECT_DOUBLE_EQ(sink.events()[0].f64("value"), 1.5);
  EXPECT_EQ(sink.events()[1].str("name"), "b");  // registration order within a tick
  EXPECT_EQ(sink.events()[2].at, seconds(4));
}

TEST(PeriodicSampler, SampleNowWorksWithoutStart) {
  sim::Simulator sim;
  PeriodicSampler sampler(sim, ObsContext{}, seconds(1));
  sampler.add_probe("p", []() { return 7.0; });
  sampler.sample_now();
  ASSERT_EQ(sampler.series("p").size(), 1u);
  EXPECT_EQ(sampler.series("p").points()[0].time, 0);
  EXPECT_DOUBLE_EQ(sampler.series("p").points()[0].value, 7.0);
}

TEST(PeriodicSampler, RejectsBadProbesAndCadence) {
  sim::Simulator sim;
  EXPECT_THROW(PeriodicSampler(sim, ObsContext{}, 0), CheckError);

  PeriodicSampler sampler(sim, ObsContext{}, seconds(1));
  sampler.add_probe("p", []() { return 0.0; });
  EXPECT_THROW(sampler.add_probe("p", []() { return 1.0; }), CheckError);
  EXPECT_THROW(sampler.add_probe("q", nullptr), CheckError);
  EXPECT_THROW(sampler.series("missing"), CheckError);
}

TEST(PeriodicSampler, PerProbeCadenceOverride) {
  sim::Simulator sim;
  PeriodicSampler sampler(sim, ObsContext{}, seconds(2));
  sampler.add_probe("coarse", []() { return 1.0; });
  sampler.add_probe("fine", []() { return 2.0; }, milliseconds(500));
  EXPECT_EQ(sampler.probe_cadence("coarse"), seconds(2));
  EXPECT_EQ(sampler.probe_cadence("fine"), milliseconds(500));

  sampler.start();
  sim.run_until(seconds(4));

  // Global probe: t=2s, 4s. Override probe: every 500ms -> 8 samples.
  EXPECT_EQ(sampler.series("coarse").size(), 2u);
  ASSERT_EQ(sampler.series("fine").size(), 8u);
  EXPECT_EQ(sampler.series("fine").points()[0].time, milliseconds(500));
  EXPECT_EQ(sampler.series("fine").points()[7].time, seconds(4));

  // stop() silences override timers too.
  sampler.stop();
  sim.run_until(seconds(10));
  EXPECT_EQ(sampler.series("fine").size(), 8u);
}

TEST(PeriodicSampler, CoincidingTicksKeepDeterministicOrder) {
  // When a global tick and an override tick land on the same instant, the
  // global-cadence probes fire first (their timer was created first), then
  // override probes in registration order — traces stay byte-stable.
  sim::Simulator sim;
  Tracer tracer;
  MemorySink sink;
  tracer.set_sink(&sink);
  PeriodicSampler sampler(sim, ObsContext(nullptr, &tracer), seconds(2));
  sampler.add_probe("fast", []() { return 1.0; }, seconds(1));
  sampler.add_probe("global", []() { return 2.0; });
  sampler.start();
  sim.run_until(seconds(2));

  // t=1s: fast. t=2s: global (shared timer first), then fast.
  ASSERT_EQ(sink.events().size(), 3u);
  EXPECT_EQ(sink.events()[0].str("name"), "fast");
  EXPECT_EQ(sink.events()[0].at, seconds(1));
  EXPECT_EQ(sink.events()[1].str("name"), "global");
  EXPECT_EQ(sink.events()[1].at, seconds(2));
  EXPECT_EQ(sink.events()[2].str("name"), "fast");
  EXPECT_EQ(sink.events()[2].at, seconds(2));
}

TEST(PeriodicSampler, ExplicitGlobalCadenceBehavesLikeDefault) {
  sim::Simulator sim;
  PeriodicSampler sampler(sim, ObsContext{}, seconds(1));
  // Passing the global cadence explicitly is normalized to "follow global":
  // one shared timer, registration order within the tick.
  sampler.add_probe("explicit", []() { return 1.0; }, seconds(1));
  EXPECT_EQ(sampler.probe_cadence("explicit"), seconds(1));
  sampler.start();
  sim.run_until(seconds(3));
  EXPECT_EQ(sampler.series("explicit").size(), 3u);
}

TEST(PeriodicSampler, RejectsCadenceMisuse) {
  sim::Simulator sim;
  PeriodicSampler sampler(sim, ObsContext{}, seconds(1));
  EXPECT_THROW(sampler.add_probe("neg", []() { return 0.0; }, -seconds(1)), CheckError);
  EXPECT_THROW(sampler.probe_cadence("missing"), CheckError);
  sampler.add_probe("ok", []() { return 0.0; });
  sampler.start();
  EXPECT_THROW(sampler.add_probe("late", []() { return 0.0; }, seconds(2)), CheckError);
}

TEST(PeriodicSampler, ProbeNamesInRegistrationOrder) {
  sim::Simulator sim;
  PeriodicSampler sampler(sim, ObsContext{}, seconds(1));
  sampler.add_probe("z", []() { return 0.0; });
  sampler.add_probe("a", []() { return 0.0; });
  const auto names = sampler.probe_names();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "z");
  EXPECT_EQ(names[1], "a");
}

}  // namespace
}  // namespace dyrs::obs
