#include "obs/sampler.h"

#include <gtest/gtest.h>

#include <memory>

#include "common/check.h"
#include "obs/metrics_registry.h"
#include "obs/trace.h"
#include "sim/simulator.h"

namespace dyrs::obs {
namespace {

TEST(PeriodicSampler, TicksOnCadenceAndRecordsSeries) {
  sim::Simulator sim;
  MetricsRegistry registry;
  PeriodicSampler sampler(sim, &registry, nullptr, seconds(1));

  int calls = 0;
  sampler.add_probe("p", [&calls]() { return static_cast<double>(++calls); });
  sampler.start();
  EXPECT_TRUE(sampler.running());
  sim.run_until(milliseconds(3500));

  const TimeSeries& ts = sampler.series("p");
  ASSERT_EQ(ts.size(), 3u);  // first sample one cadence in, none at t=0
  EXPECT_EQ(ts.points()[0].time, seconds(1));
  EXPECT_EQ(ts.points()[2].time, seconds(3));
  EXPECT_DOUBLE_EQ(ts.points()[2].value, 3.0);

  // The registry gauge mirrors the latest value.
  const Gauge* g = registry.find_gauge("p");
  ASSERT_NE(g, nullptr);
  EXPECT_DOUBLE_EQ(g->value(), 3.0);

  sampler.stop();
  EXPECT_FALSE(sampler.running());
  sim.run_until(seconds(10));
  EXPECT_EQ(sampler.series("p").size(), 3u);  // no ticks after stop
}

TEST(PeriodicSampler, EmitsOneSampleEventPerProbePerTick) {
  sim::Simulator sim;
  Tracer tracer;
  MemorySink sink;
  tracer.set_sink(&sink);
  PeriodicSampler sampler(sim, nullptr, &tracer, seconds(2));
  sampler.add_probe("a", []() { return 1.5; });
  sampler.add_probe("b", []() { return 2.5; });
  sampler.start();
  sim.run_until(seconds(4));

  ASSERT_EQ(sink.events().size(), 4u);  // 2 ticks x 2 probes
  EXPECT_EQ(sink.events()[0].type, "sample");
  EXPECT_EQ(sink.events()[0].str("name"), "a");
  EXPECT_DOUBLE_EQ(sink.events()[0].f64("value"), 1.5);
  EXPECT_EQ(sink.events()[1].str("name"), "b");  // registration order within a tick
  EXPECT_EQ(sink.events()[2].at, seconds(4));
}

TEST(PeriodicSampler, SampleNowWorksWithoutStart) {
  sim::Simulator sim;
  PeriodicSampler sampler(sim, nullptr, nullptr, seconds(1));
  sampler.add_probe("p", []() { return 7.0; });
  sampler.sample_now();
  ASSERT_EQ(sampler.series("p").size(), 1u);
  EXPECT_EQ(sampler.series("p").points()[0].time, 0);
  EXPECT_DOUBLE_EQ(sampler.series("p").points()[0].value, 7.0);
}

TEST(PeriodicSampler, RejectsBadProbesAndCadence) {
  sim::Simulator sim;
  EXPECT_THROW(PeriodicSampler(sim, nullptr, nullptr, 0), CheckError);

  PeriodicSampler sampler(sim, nullptr, nullptr, seconds(1));
  sampler.add_probe("p", []() { return 0.0; });
  EXPECT_THROW(sampler.add_probe("p", []() { return 1.0; }), CheckError);
  EXPECT_THROW(sampler.add_probe("q", nullptr), CheckError);
  EXPECT_THROW(sampler.series("missing"), CheckError);
}

TEST(PeriodicSampler, ProbeNamesInRegistrationOrder) {
  sim::Simulator sim;
  PeriodicSampler sampler(sim, nullptr, nullptr, seconds(1));
  sampler.add_probe("z", []() { return 0.0; });
  sampler.add_probe("a", []() { return 0.0; });
  const auto names = sampler.probe_names();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "z");
  EXPECT_EQ(names[1], "a");
}

}  // namespace
}  // namespace dyrs::obs
