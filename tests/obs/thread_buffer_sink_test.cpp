#include "obs/thread_buffer_sink.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "obs/trace_reader.h"

namespace dyrs::obs {
namespace {

std::tuple<std::int64_t, std::int64_t, std::int64_t, std::int64_t> merge_key(
    const TraceEvent& e) {
  return {e.i64("block", -1), e.i64("lseq", 0), e.i64("tid", 0), e.i64("tseq", 0)};
}

TEST(ThreadLocalBufferSink, MergesConcurrentEmittersByKey) {
  ThreadLocalBufferSink sink;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 200;
  {
    std::vector<std::jthread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&sink, t] {
        for (int i = 0; i < kPerThread; ++i) {
          TraceEvent e(i, "mig_transfer_start");
          // Two blocks interleaved from every thread; lifecycle rank 4.
          e.with("block", t % 2).with("lseq", 8 + 4).with("tid", t + 1).with("tseq", i);
          sink.emit(e);
        }
      });
    }
  }  // join
  EXPECT_EQ(sink.thread_count(), static_cast<std::size_t>(kThreads));
  ASSERT_EQ(sink.event_count(), static_cast<std::size_t>(kThreads * kPerThread));

  const std::vector<TraceEvent> merged = sink.merge_thread_buffers();
  ASSERT_EQ(merged.size(), static_cast<std::size_t>(kThreads * kPerThread));
  for (std::size_t i = 1; i < merged.size(); ++i) {
    EXPECT_LE(merge_key(merged[i - 1]), merge_key(merged[i])) << "at index " << i;
  }
}

TEST(ThreadLocalBufferSink, BlocklessEventsSortFirst) {
  ThreadLocalBufferSink sink;
  TraceEvent a(5, "mig_enqueue");
  a.with("block", 3).with("lseq", 9).with("tid", 0).with("tseq", 1);
  sink.emit(a);
  TraceEvent b(9, "master_failover");
  b.with("tid", 0).with("tseq", 2);
  sink.emit(b);

  const auto merged = sink.merge_thread_buffers();
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged[0].type, "master_failover");  // block fallback -1 sorts first
  EXPECT_EQ(merged[1].type, "mig_enqueue");
}

TEST(ThreadLocalBufferSink, LaterCyclesSortAfterEarlierOnes) {
  // A block migrated twice: cycle 1's terminal (lseq 1*8+6) must precede
  // cycle 2's enqueue (lseq 2*8+1) no matter the emission order.
  ThreadLocalBufferSink sink;
  TraceEvent second(50, "mig_enqueue");
  second.with("block", 7).with("lseq", 2 * 8 + 1).with("tid", 0).with("tseq", 9);
  sink.emit(second);
  TraceEvent first(40, "mig_complete");
  first.with("block", 7).with("node", 1).with("lseq", 1 * 8 + 6).with("tid", 2).with("tseq", 3);
  sink.emit(first);

  const auto merged = sink.merge_thread_buffers();
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged[0].type, "mig_complete");
  EXPECT_EQ(merged[1].type, "mig_enqueue");
}

TEST(ThreadLocalBufferSink, SortIsStableWithinEqualKeys) {
  std::vector<TraceEvent> events;
  for (int i = 0; i < 3; ++i) {
    TraceEvent e(i, "sample");
    e.with("name", "p" + std::to_string(i));  // no merge-key fields: all equal
    events.push_back(e);
  }
  sort_by_merge_key(events);
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].str("name"), "p0");
  EXPECT_EQ(events[1].str("name"), "p1");
  EXPECT_EQ(events[2].str("name"), "p2");
}

TEST(ThreadLocalBufferSink, WriteJsonlRoundTrips) {
  ThreadLocalBufferSink sink;
  for (int i = 0; i < 5; ++i) {
    TraceEvent e(i * 100, "mig_enqueue");
    e.with("block", 4 - i).with("size", 1024).with("lseq", 9).with("tid", 0).with("tseq", i);
    sink.emit(e);
  }
  const std::string path = ::testing::TempDir() + "/tbs_roundtrip.jsonl";
  sink.write_jsonl(path);

  TraceReader reader(read_jsonl_file(path));
  const auto merged = sink.merge_thread_buffers();
  ASSERT_EQ(reader.events().size(), merged.size());
  for (std::size_t i = 0; i < merged.size(); ++i) {
    EXPECT_EQ(reader.events()[i].type, merged[i].type);
    EXPECT_EQ(reader.events()[i].at, merged[i].at);
    EXPECT_EQ(reader.events()[i].i64("block"), merged[i].i64("block"));
  }
  // The file is in canonical order: block ascending here.
  EXPECT_EQ(reader.events().front().i64("block"), 0);
  EXPECT_EQ(reader.events().back().i64("block"), 4);
}

}  // namespace
}  // namespace dyrs::obs
