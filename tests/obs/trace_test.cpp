#include "obs/trace.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "common/check.h"
#include "obs/trace_reader.h"

namespace dyrs::obs {
namespace {

TEST(TraceEvent, ToJsonPreservesFieldOrderAndKinds) {
  TraceEvent e(5, "mig_bind");
  e.with("block", std::int64_t{12})
      .with("node", 3)
      .with("reason", "evicted")
      .with("wait_s", 0.5)
      .with_bool("late", true)
      .with_bool("early", false);
  EXPECT_EQ(to_json(e),
            "{\"t\":5,\"type\":\"mig_bind\",\"block\":12,\"node\":3,"
            "\"reason\":\"evicted\",\"wait_s\":0.5,\"late\":true,\"early\":false}");
}

TEST(TraceEvent, ToJsonEscapesStrings) {
  TraceEvent e(0, "note");
  e.with("msg", "a\"b\\c\nd\te");
  EXPECT_EQ(to_json(e), "{\"t\":0,\"type\":\"note\",\"msg\":\"a\\\"b\\\\c\\nd\\te\"}");
}

TEST(TraceEvent, DoubleFormattingRoundTrips) {
  // One third has no short decimal form; format must fall back to full
  // precision so the parsed value is bit-identical.
  for (double v : {1.0 / 3.0, 0.1, 1e-9, 12345678.9, 2.0, -0.0}) {
    TraceEvent e(0, "x");
    e.with("v", v);
    const TraceEvent back = parse_json_line(to_json(e));
    EXPECT_EQ(back.f64("v"), v);
  }
}

TEST(TraceEvent, AccessorsFallBackWhenAbsentOrWrongKind) {
  TraceEvent e(7, "x");
  e.with("s", "str").with("i", std::int64_t{9}).with("d", 1.5).with_bool("b", true);
  EXPECT_EQ(e.str("s"), "str");
  EXPECT_EQ(e.str("missing", "fb"), "fb");
  EXPECT_EQ(e.i64("i"), 9);
  EXPECT_EQ(e.i64("d"), -1);  // doubles don't silently truncate to int
  EXPECT_EQ(e.i64("b"), 1);
  EXPECT_DOUBLE_EQ(e.f64("i"), 9.0);
  EXPECT_DOUBLE_EQ(e.f64("d"), 1.5);
  EXPECT_DOUBLE_EQ(e.f64("s", 2.5), 2.5);
  EXPECT_EQ(e.find("nope"), nullptr);
}

TEST(ParseJsonLine, RoundTripsEveryKind) {
  TraceEvent e(123456, "sample");
  e.with("name", "node0.disk.util").with("value", 0.75).with("count", std::int64_t{4})
      .with_bool("ok", true);
  const TraceEvent back = parse_json_line(to_json(e));
  EXPECT_EQ(back.at, 123456);
  EXPECT_EQ(back.type, "sample");
  ASSERT_EQ(back.fields.size(), 4u);
  EXPECT_EQ(back.fields[0].kind, TraceEvent::Kind::String);
  EXPECT_EQ(back.fields[1].kind, TraceEvent::Kind::Double);
  EXPECT_EQ(back.fields[2].kind, TraceEvent::Kind::Int);
  EXPECT_EQ(back.fields[3].kind, TraceEvent::Kind::Bool);
  // Re-serializing the parsed event reproduces the original line exactly.
  EXPECT_EQ(to_json(back), to_json(e));
}

TEST(ParseJsonLine, ThrowsOnMalformedInput) {
  EXPECT_THROW(parse_json_line("not json"), CheckError);
  EXPECT_THROW(parse_json_line("{\"t\":1,\"type\":\"x\""), CheckError);
  EXPECT_THROW(parse_json_line("{\"t\":1,\"type\":\"x\",\"f\":}"), CheckError);
}

TEST(Tracer, DisabledByDefaultAndAfterClearing) {
  Tracer t;
  EXPECT_FALSE(t.enabled());
  t.emit(TraceEvent(0, "dropped"));  // no sink: silently ignored

  MemorySink sink;
  t.set_sink(&sink);
  EXPECT_TRUE(t.enabled());
  t.emit(TraceEvent(1, "kept"));
  t.set_sink(nullptr);
  EXPECT_FALSE(t.enabled());
  t.emit(TraceEvent(2, "dropped"));

  ASSERT_EQ(sink.events().size(), 1u);
  EXPECT_EQ(sink.events()[0].type, "kept");
}

TEST(MemorySink, KeepsEventsInEmissionOrder) {
  MemorySink sink;
  Tracer t;
  t.set_sink(&sink);
  for (int i = 0; i < 3; ++i) t.emit(TraceEvent(i, "e" + std::to_string(i)));
  ASSERT_EQ(sink.events().size(), 3u);
  EXPECT_EQ(sink.events()[2].type, "e2");
  sink.clear();
  EXPECT_TRUE(sink.events().empty());
}

TEST(JsonlStreamSink, WritesOneLinePerEventAndReadsBack) {
  std::ostringstream os;
  JsonlStreamSink sink(os);
  sink.emit(TraceEvent(1, "a"));
  TraceEvent b(2, "b");
  b.with("n", std::int64_t{5});
  sink.emit(b);

  std::istringstream is(os.str());
  const auto events = read_jsonl(is);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].type, "a");
  EXPECT_EQ(events[1].i64("n"), 5);
}

TEST(ReadJsonl, SkipsBlankLines) {
  std::istringstream is("\n{\"t\":1,\"type\":\"a\"}\n\n{\"t\":2,\"type\":\"b\"}\n");
  const auto events = read_jsonl(is);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].at, 1);
  EXPECT_EQ(events[1].at, 2);
}

// --- TraceReader span assembly on hand-built event streams ---------------

TraceEvent ev(SimTime t, const char* type, std::int64_t block) {
  TraceEvent e(t, type);
  e.with("block", block);
  return e;
}

TraceEvent ev(SimTime t, const char* type, std::int64_t block, std::int64_t node) {
  return ev(t, type, block).with("node", node);
}

TEST(TraceReader, AssemblesHappyPathSpan) {
  std::vector<TraceEvent> events;
  events.push_back(ev(10, "mig_enqueue", 1));
  events.push_back(ev(10, "mig_target", 1, 2));
  events.push_back(ev(20, "mig_bind", 1, 2));
  events.push_back(ev(21, "mig_transfer_start", 1, 2));
  events.push_back(ev(50, "mig_complete", 1, 2));

  TraceReader reader(events);
  const auto spans = reader.migration_spans();
  ASSERT_EQ(spans.size(), 1u);
  const MigrationSpan& s = spans[0];
  EXPECT_EQ(s.block, BlockId(1));
  EXPECT_EQ(s.node, NodeId(2));
  EXPECT_EQ(s.enqueued_at, 10);
  EXPECT_EQ(s.targeted_at, 10);
  EXPECT_EQ(s.bound_at, 20);
  EXPECT_EQ(s.transfer_started_at, 21);
  EXPECT_EQ(s.finished_at, 50);
  EXPECT_EQ(s.retries, 0);
  EXPECT_TRUE(s.completed);
  EXPECT_TRUE(s.complete());
  EXPECT_EQ(reader.complete_spans().size(), 1u);
}

TEST(TraceReader, CountsRetriesAndRecordsAborts) {
  std::vector<TraceEvent> events;
  events.push_back(ev(0, "mig_enqueue", 3));
  events.push_back(ev(5, "mig_bind", 3, 1));
  events.push_back(ev(6, "mig_transfer_start", 3, 1));
  events.push_back(ev(7, "mig_transfer_retry", 3, 1));
  events.push_back(ev(9, "mig_transfer_retry", 3, 1));
  events.push_back(ev(12, "mig_abort", 3).with("reason", "missed_read"));

  TraceReader reader(events);
  const auto spans = reader.migration_spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].retries, 2);
  EXPECT_TRUE(spans[0].aborted);
  EXPECT_FALSE(spans[0].completed);
  EXPECT_FALSE(spans[0].complete());
  EXPECT_EQ(spans[0].abort_reason, "missed_read");
  EXPECT_EQ(spans[0].finished_at, 12);
  EXPECT_TRUE(reader.complete_spans().empty());
}

TEST(TraceReader, ReEnqueueAfterTerminalEventOpensFreshSpan) {
  std::vector<TraceEvent> events;
  events.push_back(ev(0, "mig_enqueue", 9));
  events.push_back(ev(1, "mig_bind", 9, 4));
  events.push_back(ev(2, "mig_transfer_start", 9, 4));
  events.push_back(ev(3, "mig_complete", 9, 4));
  // Evicted then re-referenced: a second full lifecycle on the same block.
  events.push_back(ev(10, "mig_enqueue", 9));
  events.push_back(ev(11, "mig_bind", 9, 5));

  TraceReader reader(events);
  const auto spans = reader.migration_spans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_TRUE(spans[0].completed);
  EXPECT_EQ(spans[0].node, NodeId(4));
  EXPECT_FALSE(spans[1].completed);  // still open at end-of-trace
  EXPECT_EQ(spans[1].enqueued_at, 10);
  EXPECT_EQ(spans[1].node, NodeId(5));
}

TEST(TraceReader, LeftoverSpansSortedByBlock) {
  std::vector<TraceEvent> events;
  for (std::int64_t block : {7, 2, 5}) events.push_back(ev(0, "mig_enqueue", block));
  TraceReader reader(events);
  const auto spans = reader.migration_spans();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].block, BlockId(2));
  EXPECT_EQ(spans[1].block, BlockId(5));
  EXPECT_EQ(spans[2].block, BlockId(7));
}

TEST(TraceReader, OfTypeAndCountOf) {
  std::vector<TraceEvent> events;
  events.push_back(TraceEvent(0, "a"));
  events.push_back(TraceEvent(1, "b"));
  events.push_back(TraceEvent(2, "a"));
  TraceReader reader(events);
  EXPECT_EQ(reader.count_of("a"), 2u);
  EXPECT_EQ(reader.count_of("c"), 0u);
  const auto as = reader.of_type("a");
  ASSERT_EQ(as.size(), 2u);
  EXPECT_EQ(as[1]->at, 2);
}

}  // namespace
}  // namespace dyrs::obs
