// Property test: the throughput exchange is observationally equivalent to
// the per-block reference.
//
// For 200 seeded random schedules (node count, block count, sizes, replica
// sets and job assignment all drawn from the seed), the same workload runs
// under three exchange configurations:
//
//   reference   Mode::Reference, drain_batch 1  — the seed's shape
//   batched     Mode::Reference, drain_batch 16 — coalesced completions,
//               still single-lock settlement
//   sharded     Mode::Sharded (8 shards), drain_batch 16 — the full
//               throughput path
//
// and all three must produce identical (a) per-block settlement
// projections (the `type@node` signature `dyrsctl trace --span-seq`
// prints), (b) per-node and per-job completion accounting, and (c)
// per-node binding-log projections. A single migrate() call with a long
// retarget interval pins the Algorithm 1 pass to the cold-estimator
// snapshot, so the decisions are a pure policy outcome — any divergence
// would be the exchange engine's fault, not timing's.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/random.h"
#include "obs/metrics_registry.h"
#include "obs/thread_buffer_sink.h"
#include "obs/trace.h"
#include "rt/master.h"

namespace dyrs::rt {
namespace {

using namespace std::chrono_literals;

struct Schedule {
  int nodes = 0;
  std::vector<RtBlock> blocks;
};

/// Draws a workload from `seed`: 3-5 equal-bandwidth nodes, 8-24 blocks of
/// 64/128/256 KiB, 1-2 replicas each, spread over 1-3 jobs.
Schedule draw(std::uint64_t seed) {
  Rng rng(seed);
  Schedule s;
  s.nodes = static_cast<int>(rng.uniform_int(3, 5));
  const int blocks = static_cast<int>(rng.uniform_int(8, 24));
  const int jobs = static_cast<int>(rng.uniform_int(1, 3));
  for (int i = 0; i < blocks; ++i) {
    RtBlock b;
    b.block = BlockId(i);
    b.size = kKiB * (64ULL << rng.uniform_int(0, 2));
    const int first = static_cast<int>(rng.uniform_int(0, s.nodes - 1));
    b.replicas.push_back(NodeId(first));
    if (rng.bernoulli(0.5)) b.replicas.push_back(NodeId((first + 1) % s.nodes));
    b.job = JobId(rng.uniform_int(1, jobs));
    s.blocks.push_back(std::move(b));
  }
  return s;
}

struct Outcome {
  std::map<std::int64_t, std::string> settlement;  // per-block type@node span
  std::map<NodeId, std::vector<BlockId>> bindings;
  long completed = 0;
  std::unordered_map<NodeId, long> per_node;
  std::unordered_map<JobId, long> per_job;
};

Outcome run(const Schedule& s, RtMaster::Options::ExchangeConfig exchange) {
  obs::MetricsRegistry registry;
  obs::Tracer tracer;
  obs::ThreadLocalBufferSink sink;
  tracer.set_sink(&sink);

  RtMaster::Options options;
  for (int n = 0; n < s.nodes; ++n) {
    RtSlave::Options slave;
    slave.node = NodeId(n);
    slave.disk_bandwidth = mib_per_sec(64);
    slave.queue_capacity = 4;
    slave.reference_block = mib(1);
    options.slaves.push_back(slave);
  }
  options.retarget_interval = 60s;  // only migrate()'s Algorithm 1 pass runs
  options.exchange = exchange;
  options.obs = obs::ObsContext(&registry, &tracer);
  RtMaster master(std::move(options));

  // Let the retargeter thread run its startup pass (a no-op on the empty
  // queue) before the workload lands; a pass racing in *after* migrate()
  // re-snapshots loads mid-drain and would re-target pending blocks by
  // timing, not policy. The 1-4ms reads make even a pathologically late
  // pass idempotent: it would re-run before any completion moves a load.
  std::this_thread::sleep_for(10ms);
  master.migrate(s.blocks);
  EXPECT_TRUE(master.wait_idle(30s));

  Outcome out;
  out.completed = master.completed();
  out.per_node = master.completed_per_node();
  out.per_job = master.completed_per_job();
  for (const auto& [block, node] : master.binding_log()) out.bindings[node].push_back(block);
  master.shutdown();  // quiesce emitters before reading buffers

  for (const obs::TraceEvent& e : sink.merge_thread_buffers()) {
    if (e.type.rfind("mig_", 0) != 0) continue;
    const std::int64_t block = e.i64("block");
    if (block < 0) continue;
    std::string& line = out.settlement[block];
    if (!line.empty()) line += ' ';
    line += e.type;
    const std::int64_t node = e.i64("node");
    if (node >= 0) {
      line += '@';
      line += std::to_string(node);
    }
  }
  return out;
}

TEST(RtBatchEquivalence, TwoHundredSeededSchedules) {
  using Exchange = RtMaster::Options::ExchangeConfig;
  const Exchange reference{.mode = Exchange::Mode::Reference, .drain_batch = 1};
  const Exchange batched{.mode = Exchange::Mode::Reference, .drain_batch = 16};
  const Exchange sharded{.mode = Exchange::Mode::Sharded, .shards = 8, .drain_batch = 16};

  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    const Schedule s = draw(seed);
    const Outcome ref = run(s, reference);
    const Outcome bat = run(s, batched);
    const Outcome shd = run(s, sharded);

    ASSERT_EQ(ref.completed, static_cast<long>(s.blocks.size())) << "seed " << seed;
    EXPECT_EQ(ref.settlement, bat.settlement) << "seed " << seed;
    EXPECT_EQ(ref.settlement, shd.settlement) << "seed " << seed;
    EXPECT_EQ(ref.bindings, bat.bindings) << "seed " << seed;
    EXPECT_EQ(ref.bindings, shd.bindings) << "seed " << seed;
    EXPECT_EQ(ref.completed, bat.completed) << "seed " << seed;
    EXPECT_EQ(ref.completed, shd.completed) << "seed " << seed;
    EXPECT_EQ(ref.per_node, bat.per_node) << "seed " << seed;
    EXPECT_EQ(ref.per_node, shd.per_node) << "seed " << seed;
    EXPECT_EQ(ref.per_job, bat.per_job) << "seed " << seed;
    EXPECT_EQ(ref.per_job, shd.per_job) << "seed " << seed;
    if (::testing::Test::HasFailure()) break;  // one seed's dump is enough
  }
}

}  // namespace
}  // namespace dyrs::rt
