// Failure-surface tests for the real-threaded runtime: RtFaultInjector
// executing FaultPlans on wall-clock time against a live RtMaster, and the
// master's heartbeat-driven failure detector (timeout -> suspicion ->
// declared-dead, bound-work reclaim, rejoin). Wall-clock timing is loose —
// detection windows are sized so transitions are unambiguous even on a
// loaded CI machine.
#include "faults/rt_fault_injector.h"

#include <gtest/gtest.h>

#include <chrono>
#include <map>
#include <vector>

#include "common/check.h"
#include "faults/fault_surface.h"
#include "obs/metrics_registry.h"
#include "obs/thread_buffer_sink.h"
#include "obs/trace.h"
#include "obs/trace_invariants.h"
#include "obs/trace_reader.h"
#include "rt/master.h"

namespace dyrs::rt {
namespace {

using namespace std::chrono_literals;

RtSlave::Options slave_opts(int node, Rate bw) {
  RtSlave::Options o;
  o.node = NodeId(node);
  o.disk_bandwidth = bw;
  o.queue_capacity = 2;
  o.reference_block = mib(1);
  o.heartbeat_interval = 5ms;
  return o;
}

RtMaster::Options::FailureDetection fast_detection() {
  RtMaster::Options::FailureDetection fd;
  fd.enabled = true;
  fd.monitor_interval = 5ms;
  fd.suspect_after = 60ms;
  fd.declare_dead_after = 150ms;
  return fd;
}

/// Polls the detector until `node` reaches `want` or `timeout` elapses.
bool wait_state(RtMaster& master, NodeId node, RtMaster::NodeState want,
                std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (std::chrono::steady_clock::now() < deadline) {
    if (master.node_state(node) == want) return true;
    std::this_thread::sleep_for(2ms);
  }
  return master.node_state(node) == want;
}

// The acceptance scenario: a scripted FaultPlan crashes a slave mid-
// migration; every job still completes on the rt backend because the
// failure detector reclaims the abandoned bindings and requeues them to
// the survivors with the dead node on the avoid list.
TEST(RtFaults, SlaveCrashMidMigrationRequeuesToSurvivors) {
  obs::MetricsRegistry registry;
  obs::Tracer tracer;
  obs::ThreadLocalBufferSink sink;
  tracer.set_sink(&sink);

  RtMaster::Options options;
  options.slaves = {slave_opts(0, mib_per_sec(64)), slave_opts(1, mib_per_sec(64)),
                    slave_opts(2, mib_per_sec(64))};
  options.retarget_interval = 2ms;
  options.failure_detection = fast_detection();
  options.obs = obs::ObsContext(&registry, &tracer);
  RtMaster master(std::move(options));

  // Nodes 0 and 1 carry a deep backlog of single-replica fast blocks
  // (~750ms each at 64MiB/s), so Algorithm 1 sends the dual-replica
  // blocks {2, 0} to the idle node 2 (earliest finish even for the third:
  // 750ms vs ~1s behind node 0's backlog). Each 16MiB read takes ~250ms —
  // far longer than the 70ms to the crash, so node 2 abandons them all
  // mid-transfer even if the timeline thread fires late.
  std::vector<RtBlock> blocks;
  for (int i = 0; i < 48; ++i) blocks.push_back({BlockId(i), mib(1), {NodeId(0)}, JobId(1)});
  for (int i = 0; i < 48; ++i) blocks.push_back({BlockId(100 + i), mib(1), {NodeId(1)}, JobId(1)});
  for (int i = 0; i < 3; ++i) {
    blocks.push_back({BlockId(200 + i), mib(16), {NodeId(2), NodeId(0)}, JobId(2)});
  }

  faults::RtFaultInjector injector(master, /*seed=*/7);
  faults::FaultSurface& surface = injector;  // exercised via the shared interface
  // Restart only after the survivors have drained everything (~1.5s), so
  // no still-pending block can retarget back to the rejoined node and
  // perturb the per-node counts below.
  faults::FaultPlan plan;
  plan.crash_process(NodeId(2), milliseconds(70), milliseconds(2500));
  surface.install(plan);

  master.migrate(blocks);
  ASSERT_TRUE(wait_state(master, NodeId(2), RtMaster::NodeState::Dead, 5000ms));

  ASSERT_TRUE(master.wait_idle(60s));
  EXPECT_EQ(master.completed(), 99);
  EXPECT_EQ(master.pending(), 0u);
  // Node 2 never finished a dual block (first complete would land at
  // ~250ms, after the 70ms crash): all three settled on the survivor
  // replica, node 0. At least the bound ones went through a heartbeat-loss
  // requeue with node 2 on the avoid list.
  auto per_node = master.completed_per_node();
  EXPECT_EQ(per_node[NodeId(2)], 0);
  EXPECT_EQ(per_node[NodeId(0)], 51);
  EXPECT_EQ(per_node[NodeId(1)], 48);
  EXPECT_GE(master.requeued(), 2);

  // The restart at 900ms resumes heartbeats: the node rejoins the eligible
  // set and serves new work again.
  ASSERT_TRUE(injector.wait_done(10000ms));
  ASSERT_TRUE(wait_state(master, NodeId(2), RtMaster::NodeState::Alive, 5000ms));
  master.migrate({{BlockId(300), mib(1), {NodeId(2)}, JobId(3)}});
  ASSERT_TRUE(master.wait_idle(30s));
  EXPECT_EQ(master.completed_per_node()[NodeId(2)], 1);
  EXPECT_EQ(surface.events_applied(), 2);

  // The merged trace of the whole episode satisfies the rt-faults
  // invariant profile: heartbeat-loss aborts, requeue spans and zombie
  // tolerance are all per-block rules and stay checked.
  master.shutdown();
  obs::TraceReader reader(sink.merge_thread_buffers());
  obs::TraceInvariants oracle;
  oracle.profile = obs::TraceInvariants::Profile::RtFaults;
  oracle.flag_open_lifecycles = true;
  const obs::InvariantReport report = oracle.check(reader);
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_EQ(report.open_at_end, 0u);
}

TEST(RtFaults, PartitionDeclaredDeadZombieSuppressedThenRejoins) {
  RtMaster::Options options;
  options.slaves = {slave_opts(0, mib_per_sec(64)), slave_opts(1, mib_per_sec(64))};
  options.retarget_interval = 2ms;
  options.failure_detection = fast_detection();
  RtMaster master(std::move(options));

  // Node 0 is busy with its own backlog; the dual-replica 16MiB block
  // (~250ms read) deterministically binds to the idle node 1.
  std::vector<RtBlock> blocks;
  for (int i = 0; i < 24; ++i) blocks.push_back({BlockId(i), mib(1), {NodeId(0)}, JobId(1)});
  blocks.push_back({BlockId(500), mib(16), {NodeId(1), NodeId(0)}, JobId(2)});

  faults::RtFaultInjector injector(master, /*seed=*/3);
  faults::FaultPlan plan;
  plan.partition(NodeId(1), milliseconds(40), milliseconds(900));
  injector.install(plan);

  master.migrate(blocks);
  // The partitioned slave keeps transferring but goes silent; the detector
  // declares it dead and the block is requeued to node 0.
  ASSERT_TRUE(wait_state(master, NodeId(1), RtMaster::NodeState::Dead, 5000ms));
  EXPECT_TRUE(master.slave(NodeId(1)).running());  // daemon alive, just unreachable

  ASSERT_TRUE(master.wait_idle(60s));
  EXPECT_EQ(master.completed(), 25);
  // The zombie's own completion of block 500 was suppressed (its binding
  // was reclaimed): node 0 owns the migration.
  EXPECT_EQ(master.completed_per_node()[NodeId(0)], 25);
  EXPECT_EQ(master.completed_per_node()[NodeId(1)], 0);
  EXPECT_GE(master.requeued(), 1);

  ASSERT_TRUE(injector.wait_done(10000ms));
  ASSERT_TRUE(wait_state(master, NodeId(1), RtMaster::NodeState::Alive, 5000ms));
}

TEST(RtFaults, IoErrorWindowRetriesLocallyUntilClean) {
  auto opts = slave_opts(0, mib_per_sec(400));
  // Generous local budget: with rate 0.5 the chance of exhausting 50
  // attempts is negligible, so every block settles on its home node.
  opts.retry = {.max_attempts = 50, .backoff = milliseconds(1), .backoff_cap = milliseconds(4)};
  RtMaster master({.slaves = {opts}, .retarget_interval = 2ms});

  faults::RtFaultInjector injector(master, /*seed=*/11);
  faults::FaultPlan plan;
  plan.io_errors(NodeId(0), 0, seconds(30), 0.5);
  injector.install(plan);

  std::vector<RtBlock> blocks;
  for (int i = 0; i < 12; ++i) blocks.push_back({BlockId(i), 256 * kKiB, {NodeId(0)}, JobId(1)});
  master.migrate(blocks);
  ASSERT_TRUE(master.wait_idle(60s));
  EXPECT_EQ(master.completed(), 12);
  EXPECT_GT(injector.io_errors_injected(), 0);
  EXPECT_GT(master.slave(NodeId(0)).retries(), 0);
  EXPECT_EQ(master.slave(NodeId(0)).permanent_failures(), 0);
}

TEST(RtFaults, DiskDegradationScalesAndRestoresBandwidth) {
  RtMaster master({.slaves = {slave_opts(0, mib_per_sec(100))}, .retarget_interval = 2ms});
  const Rate base = master.slave(NodeId(0)).disk().bandwidth();

  faults::RtFaultInjector injector(master, /*seed=*/5);
  faults::FaultPlan plan;
  plan.degrade_disk(NodeId(0), milliseconds(10), milliseconds(700), 0.25);
  plan.degrade_disk(NodeId(0), milliseconds(30), milliseconds(600), 0.5);  // overlap multiplies
  injector.install(plan);

  std::this_thread::sleep_for(200ms);
  EXPECT_NEAR(master.slave(NodeId(0)).disk().bandwidth(), base * 0.25 * 0.5, base * 0.01);
  ASSERT_TRUE(injector.wait_done(10000ms));
  EXPECT_EQ(master.slave(NodeId(0)).disk().bandwidth(), base);
  EXPECT_EQ(injector.events_applied(), 4);
}

TEST(RtFaults, StopRestoresUnfinishedWindows) {
  RtMaster master({.slaves = {slave_opts(0, mib_per_sec(100))}, .retarget_interval = 2ms});
  const Rate base = master.slave(NodeId(0)).disk().bandwidth();

  faults::RtFaultInjector injector(master, /*seed=*/5);
  faults::FaultPlan plan;
  plan.degrade_disk(NodeId(0), milliseconds(5), seconds(600), 0.1);
  plan.partition(NodeId(0), milliseconds(5), seconds(600));
  injector.install(plan);
  std::this_thread::sleep_for(60ms);
  EXPECT_LT(master.slave(NodeId(0)).disk().bandwidth(), base);
  EXPECT_TRUE(master.slave(NodeId(0)).partitioned());

  injector.stop();  // cluster must come back healthy
  EXPECT_EQ(master.slave(NodeId(0)).disk().bandwidth(), base);
  EXPECT_FALSE(master.slave(NodeId(0)).partitioned());
}

TEST(RtFaults, InstallRejectsUnknownNodeAndDoubleInstall) {
  RtMaster master({.slaves = {slave_opts(0, mib_per_sec(100))}, .retarget_interval = 2ms});
  faults::RtFaultInjector injector(master, /*seed=*/1);
  faults::FaultPlan bad;
  bad.crash_process(NodeId(9), milliseconds(1), milliseconds(2));
  EXPECT_THROW(injector.install(bad), dyrs::CheckError);

  faults::FaultPlan ok;
  ok.degrade_disk(NodeId(0), milliseconds(1), milliseconds(2), 0.5);
  injector.install(ok);
  EXPECT_THROW(injector.install(ok), dyrs::CheckError);
}

TEST(RtFaults, SuspicionIsAGracePeriodNotADeclaration) {
  // Stale heartbeats past suspect_after but short of declare_dead_after
  // must only mark the node Suspect; resumed heartbeats clear it without
  // any reclaim.
  RtMaster::Options options;
  options.slaves = {slave_opts(0, mib_per_sec(100))};
  options.retarget_interval = 2ms;
  options.failure_detection.enabled = true;
  options.failure_detection.monitor_interval = 5ms;
  options.failure_detection.suspect_after = 50ms;
  options.failure_detection.declare_dead_after = 10s;
  RtMaster master(std::move(options));
  EXPECT_EQ(master.node_state(NodeId(0)), RtMaster::NodeState::Alive);

  master.slave(NodeId(0)).set_partitioned(true);
  ASSERT_TRUE(wait_state(master, NodeId(0), RtMaster::NodeState::Suspect, 5000ms));
  master.slave(NodeId(0)).set_partitioned(false);
  ASSERT_TRUE(wait_state(master, NodeId(0), RtMaster::NodeState::Alive, 5000ms));
  EXPECT_EQ(master.requeued(), 0);
}

// Regression for the bind_for avoid-list hole: a block whose replica
// exhausted its retry budget is requeued with that node on its avoid list,
// and must never bind there again — even under the incremental retargeter
// holding a stale scoring basis (the window where a stale target can still
// point at the failed node).
TEST(RtFaults, PermanentIoErrorsNeverRebindToAvoidedReplica) {
  auto bad = slave_opts(0, mib_per_sec(400));  // fastest: Algorithm 1's first pick
  bad.retry = {.max_attempts = 2, .backoff = milliseconds(1), .backoff_cap = milliseconds(2)};
  RtMaster::Options options;
  options.slaves = {bad, slave_opts(1, mib_per_sec(100))};
  options.retarget_interval = 2ms;
  options.retarget.mode = core::RetargetConfig::Mode::Incremental;
  options.retarget.estimate_threshold = 0.3;
  options.retarget.queued_threshold = 1.0;
  RtMaster master(std::move(options));

  faults::RtFaultInjector injector(master, /*seed=*/3);
  faults::FaultPlan plan;
  plan.io_errors(NodeId(0), 0, seconds(60), 1.0);  // every attempt on node 0 fails
  injector.install(plan);

  std::vector<RtBlock> blocks;
  for (int i = 0; i < 4; ++i) blocks.push_back({BlockId(i), 256 * kKiB, {NodeId(0), NodeId(1)}, JobId(1)});
  master.migrate(blocks);
  ASSERT_TRUE(master.wait_idle(60s));

  EXPECT_EQ(master.completed(), 4);
  EXPECT_EQ(master.completed_per_node()[NodeId(0)], 0);
  EXPECT_EQ(master.completed_per_node()[NodeId(1)], 4);
  EXPECT_GE(master.slave(NodeId(0)).permanent_failures(), 1);
  EXPECT_GE(master.requeued(), 1);

  // Each block visits node 0 at most once; after the failure joins its
  // avoid list, every further bind is at node 1.
  std::map<BlockId, int> binds_at_bad;
  for (const auto& [block, node] : master.binding_log()) {
    if (node == NodeId(0)) ++binds_at_bad[block];
  }
  for (const auto& [block, count] : binds_at_bad) {
    EXPECT_LE(count, 1) << "block " << block << " re-bound to its avoided replica";
  }
}

// Zombie suppression with *batched* completions: a partitioned slave
// finishes a whole drain batch and flushes one coalesced report after its
// bindings were reclaimed. Suppression is keyed on each batch member's
// (block, node, cycle) — never on the batch — so all four members drop
// individually and nothing settles twice or leaks into the counters.
TEST(RtFaults, BatchedZombieCompletionsSuppressedPerMember) {
  constexpr int kBacklog = 64;

  RtMaster::Options options;
  auto busy = slave_opts(0, mib_per_sec(64));
  auto victim = slave_opts(1, mib_per_sec(64));
  busy.queue_capacity = 4;
  victim.queue_capacity = 4;
  options.slaves = {busy, victim};
  options.retarget_interval = 10ms;
  options.exchange = {.mode = RtMaster::Options::ExchangeConfig::Mode::Sharded,
                      .shards = 8,
                      .drain_batch = 4};
  // Wider windows than fast_detection(): under TSan the 150ms dead window
  // false-positives on the *busy* node (a retarget pass holding mu_ can
  // stall its pull — and so its worker-loop heartbeat — for >150ms at
  // sanitizer speed), which would requeue the dual blocks with node 0 on
  // the avoid list too and abort them untargetable. 500ms still declares
  // the victim dead well before its ~1s batch flush, which is the only
  // ordering this test needs.
  options.failure_detection = fast_detection();
  options.failure_detection.suspect_after = 200ms;
  options.failure_detection.declare_dead_after = 500ms;
  RtMaster master(std::move(options));

  // Node 0 carries a 64MiB single-replica backlog (~1s at 64MiB/s), so the
  // earliest-finish pass sends every 16MiB block to the idle node 1 — even
  // the fourth (cumulative 1.0s vs 1.25s behind the backlog). Node 1 pulls
  // all four at once and reads them as ONE drain batch (~1s), flushing one
  // coalesced completion report at the end.
  std::vector<RtBlock> blocks;
  for (int i = 0; i < kBacklog; ++i) {
    blocks.push_back({BlockId(i), mib(1), {NodeId(0)}, JobId(1)});
  }
  blocks.push_back({BlockId(600), mib(16), {NodeId(1)}, JobId(2)});  // single replica
  for (int i = 1; i < 4; ++i) {
    blocks.push_back({BlockId(600 + i), mib(16), {NodeId(1), NodeId(0)}, JobId(2)});
  }

  // Partition node 1 at 40ms — long before its ~1s batch finishes — and
  // heal at 1.5s. The detector reclaims all four bindings at ~550ms:
  // block 600 (only replica is the dead node) aborts untargetable, the
  // three dual blocks requeue to node 0 with node 1 on the avoid list.
  faults::RtFaultInjector injector(master, /*seed=*/11);
  faults::FaultPlan plan;
  plan.partition(NodeId(1), milliseconds(40), milliseconds(1500));
  injector.install(plan);

  master.migrate(blocks);
  ASSERT_TRUE(wait_state(master, NodeId(1), RtMaster::NodeState::Dead, 5000ms));
  EXPECT_TRUE(master.slave(NodeId(1)).running());  // zombie: alive, unreachable

  ASSERT_TRUE(master.wait_idle(60s));
  // The zombie's local reads all finish (the partition only silences
  // heartbeats); poll until its flush lands so the suppression below is
  // actually exercised, not raced past.
  const auto deadline = std::chrono::steady_clock::now() + 30s;
  while (master.slave(NodeId(1)).completed() < 4 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(5ms);
  }
  EXPECT_EQ(master.slave(NodeId(1)).completed(), 4);

  // Exactly-once settlement: backlog + the three requeued dual blocks, all
  // owned by node 0; every one of the four batched zombie reports dropped.
  EXPECT_EQ(master.completed(), kBacklog + 3);
  EXPECT_EQ(master.completed_per_node()[NodeId(0)], kBacklog + 3);
  EXPECT_EQ(master.completed_per_node()[NodeId(1)], 0);
  EXPECT_GE(master.requeued(), 3);
  EXPECT_EQ(master.pending(), 0u);  // block 600 aborted, not hung
  const auto per_job = master.completed_per_job();
  EXPECT_EQ(per_job.at(JobId(1)), kBacklog);
  EXPECT_EQ(per_job.at(JobId(2)), 3);

  ASSERT_TRUE(injector.wait_done(10000ms));
  ASSERT_TRUE(wait_state(master, NodeId(1), RtMaster::NodeState::Alive, 5000ms));
}

TEST(RtFaults, DetectionDisabledReportsAlive) {
  RtMaster master({.slaves = {slave_opts(0, mib_per_sec(100))}, .retarget_interval = 2ms});
  master.slave(NodeId(0)).crash();
  std::this_thread::sleep_for(30ms);
  EXPECT_EQ(master.node_state(NodeId(0)), RtMaster::NodeState::Alive);
  EXPECT_FALSE(master.slave(NodeId(0)).running());
  master.slave(NodeId(0)).restart();
  EXPECT_TRUE(master.slave(NodeId(0)).running());
}

}  // namespace
}  // namespace dyrs::rt
