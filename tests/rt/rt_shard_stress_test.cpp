// Concurrency stress for the sharded exchange: 16 slaves hammering batched
// pull/complete against the striped settlement state while two of them
// crash and restart mid-drain and poller threads snapshot the lock-free
// accessors continuously. Runs in Release and in the tsan-rt CI job (with
// a scaled-down block count); the assertions are pure accounting — every
// block settles exactly once no matter how the batches, reclaims and
// snapshots interleave.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "rt/master.h"

#if defined(__SANITIZE_THREAD__)
#define DYRS_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define DYRS_TSAN 1
#endif
#endif

namespace dyrs::rt {
namespace {

using namespace std::chrono_literals;

TEST(RtShardStress, BatchedCrashRestartWithConcurrentPollers) {
  constexpr int kNodes = 16;
#ifdef DYRS_TSAN
  constexpr int kBlocks = 4000;  // TSan multiplies per-access cost ~10x
#else
  constexpr int kBlocks = 50000;
#endif
  constexpr int kJobs = 4;

  RtMaster::Options options;
  for (int n = 0; n < kNodes; ++n) {
    RtSlave::Options s;
    s.node = NodeId(n);
    s.disk_bandwidth = mib_per_sec(2048);
    s.queue_capacity = 64;
    s.reference_block = mib(1);
    s.heartbeat_interval = 5ms;
    options.slaves.push_back(s);
  }
  options.retarget_interval = 2ms;
  options.exchange = {.mode = RtMaster::Options::ExchangeConfig::Mode::Sharded,
                      .shards = 16,
                      .drain_batch = 32};
  options.failure_detection.enabled = true;
  options.failure_detection.monitor_interval = 5ms;
  options.failure_detection.suspect_after = 60ms;
  options.failure_detection.declare_dead_after = 150ms;
  RtMaster master(std::move(options));

  // Adjacent-pair replicas: nodes 3 and 7 are never both holders of one
  // block, so every reclaimed block still has a live replica to requeue to
  // and the final count must be exact.
  std::vector<RtBlock> blocks;
  blocks.reserve(kBlocks);
  for (int i = 0; i < kBlocks; ++i) {
    blocks.push_back({BlockId(i), 4 * kKiB,
                      {NodeId(i % kNodes), NodeId((i + 1) % kNodes)},
                      JobId(1 + i % kJobs)});
  }

  // Pollers snapshot the accessors throughout the drain — this is the
  // TSan surface for the lock-free counter reads racing worker-thread
  // settlements, and doubles as the no-blocking claim under load.
  std::atomic<bool> done{false};
  std::atomic<long> observed_max{0};
  std::vector<std::jthread> pollers;
  for (int p = 0; p < 2; ++p) {
    pollers.emplace_back([&] {
      while (!done.load(std::memory_order_relaxed)) {
        long sum = 0;
        for (const auto& [node, n] : master.completed_per_node()) sum += n;
        long jobs = 0;
        for (const auto& [job, n] : master.completed_per_job()) jobs += n;
        const long total = master.completed();
        // Monotone sanity while racing: sums lag or match, never exceed.
        EXPECT_LE(sum, kBlocks);
        EXPECT_LE(jobs, kBlocks);
        long prev = observed_max.load(std::memory_order_relaxed);
        while (total > prev &&
               !observed_max.compare_exchange_weak(prev, total, std::memory_order_relaxed)) {
        }
        std::this_thread::sleep_for(100us);
      }
    });
  }

  std::jthread chaos([&master] {
    std::this_thread::sleep_for(20ms);
    master.slave(NodeId(3)).crash();
    std::this_thread::sleep_for(30ms);
    master.slave(NodeId(7)).crash();
    std::this_thread::sleep_for(550ms);
    master.slave(NodeId(3)).restart();
    std::this_thread::sleep_for(300ms);
    master.slave(NodeId(7)).restart();
  });

  master.migrate(blocks);
  ASSERT_TRUE(master.wait_idle(100s));
  chaos.join();
  done.store(true, std::memory_order_relaxed);
  for (auto& p : pollers) p.join();

  // Exactly-once settlement: no batch member double-settled through a
  // reclaim race, none was lost.
  EXPECT_EQ(master.completed(), kBlocks);
  long per_node_sum = 0;
  for (const auto& [node, n] : master.completed_per_node()) {
    EXPECT_GE(n, 0);
    per_node_sum += n;
  }
  EXPECT_EQ(per_node_sum, kBlocks);
  long per_job_sum = 0;
  const auto per_job = master.completed_per_job();
  EXPECT_EQ(per_job.size(), static_cast<std::size_t>(kJobs));
  for (const auto& [job, n] : per_job) per_job_sum += n;
  EXPECT_EQ(per_job_sum, kBlocks);
  EXPECT_EQ(master.pending(), 0u);
  EXPECT_LE(observed_max.load(), kBlocks);
  master.shutdown();
}

}  // namespace
}  // namespace dyrs::rt
