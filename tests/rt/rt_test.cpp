// Real-threaded runtime tests. Wall-clock timing is kept loose: these
// verify protocol behaviour (load distribution, adaptivity, shutdown
// safety), not precise timing.
#include "rt/master.h"

#include <gtest/gtest.h>

#include "rt/throttled_disk.h"

namespace dyrs::rt {
namespace {

using namespace std::chrono_literals;

RtSlave::Options slave_opts(int node, Rate bw) {
  RtSlave::Options o;
  o.node = NodeId(node);
  o.disk_bandwidth = bw;
  o.queue_capacity = 2;
  o.reference_block = mib(1);
  return o;
}

std::vector<RtBlock> blocks_on_all(int count, int nodes, Bytes size = mib(1)) {
  std::vector<RtBlock> out;
  for (int i = 0; i < count; ++i) {
    RtBlock b;
    b.block = BlockId(i);
    b.size = size;
    for (int n = 0; n < nodes; ++n) b.replicas.push_back(NodeId(n));
    out.push_back(std::move(b));
  }
  return out;
}

TEST(ThrottledDisk, ReadTakesProportionalTime) {
  ThrottledDisk disk(mib_per_sec(100));
  const auto start = std::chrono::steady_clock::now();
  EXPECT_TRUE(disk.read(mib(5)));  // ~50ms
  const double s = std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  EXPECT_GT(s, 0.03);
  EXPECT_LT(s, 0.5);
}

TEST(ThrottledDisk, CancellationStopsRead) {
  ThrottledDisk disk(mib_per_sec(1));  // 1 MiB/s: a 10MiB read would be 10s
  std::atomic<bool> cancelled{false};
  std::jthread killer([&] {
    std::this_thread::sleep_for(20ms);
    cancelled = true;
  });
  const auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(disk.read(mib(10), &cancelled));
  const double s = std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  EXPECT_LT(s, 2.0);
}

TEST(ThrottledDisk, BandwidthChangeMidRead) {
  ThrottledDisk disk(mib_per_sec(10));  // 4MiB would take 400ms
  std::jthread booster([&] {
    std::this_thread::sleep_for(20ms);
    disk.set_bandwidth(mib_per_sec(1000));
  });
  const auto start = std::chrono::steady_clock::now();
  EXPECT_TRUE(disk.read(mib(4)));
  const double s = std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  EXPECT_LT(s, 0.3);  // the speedup took effect mid-read
}

TEST(RtMaster, DrainsAllMigrations) {
  RtMaster master({.slaves = {slave_opts(0, mib_per_sec(200)), slave_opts(1, mib_per_sec(200))},
                   .retarget_interval = 2ms});
  master.migrate(blocks_on_all(12, 2));
  ASSERT_TRUE(master.wait_idle(10s));
  EXPECT_EQ(master.completed(), 12);
  EXPECT_EQ(master.pending(), 0u);
  EXPECT_EQ(master.slave(NodeId(0)).buffered_count() + master.slave(NodeId(1)).buffered_count(),
            12u);
}

TEST(RtMaster, LoadFollowsBandwidth) {
  // Node 0 is 8x faster; it should complete the bulk of the migrations.
  RtMaster master({.slaves = {slave_opts(0, mib_per_sec(400)), slave_opts(1, mib_per_sec(50))},
                   .retarget_interval = 2ms});
  master.migrate(blocks_on_all(24, 2));
  ASSERT_TRUE(master.wait_idle(30s));
  auto per_node = master.completed_per_node();
  EXPECT_GT(per_node[NodeId(0)], per_node[NodeId(1)] * 2);
}

TEST(RtMaster, BuffersHoldRealBytes) {
  RtMaster master({.slaves = {slave_opts(0, mib_per_sec(500))}, .retarget_interval = 2ms});
  master.migrate(blocks_on_all(4, 1, mib(2)));
  ASSERT_TRUE(master.wait_idle(10s));
  EXPECT_EQ(master.slave(NodeId(0)).buffered_bytes(), mib(8));
}

TEST(RtMaster, EstimatorAdaptsToSlowdown) {
  RtMaster master({.slaves = {slave_opts(0, mib_per_sec(400))}, .retarget_interval = 2ms});
  master.migrate(blocks_on_all(4, 1));
  ASSERT_TRUE(master.wait_idle(10s));
  const double fast = master.slave(NodeId(0)).sec_per_byte();
  master.slave(NodeId(0)).disk().set_bandwidth(mib_per_sec(20));
  master.migrate(blocks_on_all(4, 1));  // block ids reused: fine, new entries
  ASSERT_TRUE(master.wait_idle(30s));
  EXPECT_GT(master.slave(NodeId(0)).sec_per_byte(), fast * 3);
}

TEST(RtMaster, ConcurrentMigrateCalls) {
  RtMaster master({.slaves = {slave_opts(0, mib_per_sec(300)), slave_opts(1, mib_per_sec(300)),
                              slave_opts(2, mib_per_sec(300))},
                   .retarget_interval = 2ms});
  std::vector<std::jthread> submitters;
  for (int t = 0; t < 4; ++t) {
    submitters.emplace_back([&master, t] {
      std::vector<RtBlock> blocks;
      for (int i = 0; i < 5; ++i) {
        RtBlock b;
        b.block = BlockId(t * 100 + i);
        b.size = mib(1);
        b.replicas = {NodeId(0), NodeId(1), NodeId(2)};
        blocks.push_back(std::move(b));
      }
      master.migrate(blocks);
    });
  }
  submitters.clear();  // join all
  ASSERT_TRUE(master.wait_idle(30s));
  EXPECT_EQ(master.completed(), 20);
}

TEST(RtMaster, CancelPendingMigration) {
  RtMaster master({.slaves = {slave_opts(0, mib_per_sec(1))}, .retarget_interval = 2ms});
  master.migrate(blocks_on_all(10, 1));
  // Most blocks still pending or queued; cancel one that can't have run.
  EXPECT_TRUE(master.cancel(BlockId(9)));
  EXPECT_FALSE(master.cancel(BlockId(9)));
  EXPECT_FALSE(master.cancel(BlockId(999)));
}

TEST(RtMaster, CancelActiveMigrationUnblocksQuickly) {
  // One slow slave; the first block would take ~8s. Cancelling everything
  // lets wait_idle succeed almost immediately.
  RtMaster master({.slaves = {slave_opts(0, mib_per_sec(1))}, .retarget_interval = 2ms});
  master.migrate(blocks_on_all(3, 1, mib(8)));
  std::this_thread::sleep_for(50ms);  // let the first read start
  int cancelled = 0;
  for (int b = 0; b < 3; ++b) {
    // A block in flight between master pull and slave enqueue is briefly
    // invisible to cancel; retry covers that hand-off window.
    for (int attempt = 0; attempt < 100; ++attempt) {
      if (master.cancel(BlockId(b))) {
        ++cancelled;
        break;
      }
      std::this_thread::sleep_for(2ms);
    }
  }
  EXPECT_EQ(cancelled, 3);
  EXPECT_TRUE(master.wait_idle(5s));
  EXPECT_EQ(master.completed(), 0);
  EXPECT_EQ(master.slave(NodeId(0)).buffered_count(), 0u);
}

TEST(RtMaster, ShutdownIsIdempotentAndSafeWithPendingWork) {
  auto master = std::make_unique<RtMaster>(
      RtMaster::Options{.slaves = {slave_opts(0, mib_per_sec(1))}, .retarget_interval = 2ms});
  master->migrate(blocks_on_all(50, 1));  // would take ~50s: shut down early
  std::this_thread::sleep_for(30ms);
  master->shutdown();
  master->shutdown();
  master.reset();  // no hang, no crash
  SUCCEED();
}

TEST(RtMaster, WaitIdleTimesOutWhenBusy) {
  RtMaster master({.slaves = {slave_opts(0, mib_per_sec(1))}, .retarget_interval = 2ms});
  master.migrate(blocks_on_all(3, 1));
  EXPECT_FALSE(master.wait_idle(30ms));
}

}  // namespace
}  // namespace dyrs::rt
