// Real-threaded runtime tests. Wall-clock timing is kept loose: these
// verify protocol behaviour (load distribution, adaptivity, shutdown
// safety), not precise timing.
#include "rt/master.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "obs/metrics_registry.h"
#include "obs/thread_buffer_sink.h"
#include "obs/trace.h"
#include "obs/trace_invariants.h"
#include "obs/trace_reader.h"
#include "rt/throttled_disk.h"

namespace dyrs::rt {
namespace {

using namespace std::chrono_literals;

RtSlave::Options slave_opts(int node, Rate bw) {
  RtSlave::Options o;
  o.node = NodeId(node);
  o.disk_bandwidth = bw;
  o.queue_capacity = 2;
  o.reference_block = mib(1);
  return o;
}

std::vector<RtBlock> blocks_on_all(int count, int nodes, Bytes size = mib(1)) {
  std::vector<RtBlock> out;
  for (int i = 0; i < count; ++i) {
    RtBlock b;
    b.block = BlockId(i);
    b.size = size;
    for (int n = 0; n < nodes; ++n) b.replicas.push_back(NodeId(n));
    out.push_back(std::move(b));
  }
  return out;
}

TEST(ThrottledDisk, ReadTakesProportionalTime) {
  ThrottledDisk disk(mib_per_sec(100));
  const auto start = std::chrono::steady_clock::now();
  EXPECT_TRUE(disk.read(mib(5)));  // ~50ms
  const double s = std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  EXPECT_GT(s, 0.03);
  EXPECT_LT(s, 0.5);
}

TEST(ThrottledDisk, CancellationStopsRead) {
  ThrottledDisk disk(mib_per_sec(1));  // 1 MiB/s: a 10MiB read would be 10s
  std::atomic<bool> cancelled{false};
  std::jthread killer([&] {
    std::this_thread::sleep_for(20ms);
    cancelled = true;
  });
  const auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(disk.read(mib(10), &cancelled));
  const double s = std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  EXPECT_LT(s, 2.0);
}

TEST(ThrottledDisk, BandwidthChangeMidRead) {
  ThrottledDisk disk(mib_per_sec(10));  // 4MiB would take 400ms
  std::jthread booster([&] {
    std::this_thread::sleep_for(20ms);
    disk.set_nominal_bandwidth(mib_per_sec(1000));
  });
  const auto start = std::chrono::steady_clock::now();
  EXPECT_TRUE(disk.read(mib(4)));
  const double s = std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  EXPECT_LT(s, 0.3);  // the speedup took effect mid-read
}

TEST(RtMaster, DrainsAllMigrations) {
  RtMaster master({.slaves = {slave_opts(0, mib_per_sec(200)), slave_opts(1, mib_per_sec(200))},
                   .retarget_interval = 2ms});
  master.migrate(blocks_on_all(12, 2));
  ASSERT_TRUE(master.wait_idle(10s));
  EXPECT_EQ(master.completed(), 12);
  EXPECT_EQ(master.pending(), 0u);
  EXPECT_EQ(master.slave(NodeId(0)).buffered_count() + master.slave(NodeId(1)).buffered_count(),
            12u);
}

TEST(RtMaster, LoadFollowsBandwidth) {
  // Node 0 is 8x faster; it should complete the bulk of the migrations.
  RtMaster master({.slaves = {slave_opts(0, mib_per_sec(400)), slave_opts(1, mib_per_sec(50))},
                   .retarget_interval = 2ms});
  master.migrate(blocks_on_all(24, 2));
  ASSERT_TRUE(master.wait_idle(30s));
  auto per_node = master.completed_per_node();
  EXPECT_GT(per_node[NodeId(0)], per_node[NodeId(1)] * 2);
}

TEST(RtMaster, BuffersHoldRealBytes) {
  RtMaster master({.slaves = {slave_opts(0, mib_per_sec(500))}, .retarget_interval = 2ms});
  master.migrate(blocks_on_all(4, 1, mib(2)));
  ASSERT_TRUE(master.wait_idle(10s));
  EXPECT_EQ(master.slave(NodeId(0)).buffered_bytes(), mib(8));
}

TEST(RtMaster, EstimatorAdaptsToSlowdown) {
  RtMaster master({.slaves = {slave_opts(0, mib_per_sec(400))}, .retarget_interval = 2ms});
  master.migrate(blocks_on_all(4, 1));
  ASSERT_TRUE(master.wait_idle(10s));
  const double fast = master.slave(NodeId(0)).sec_per_byte();
  master.slave(NodeId(0)).disk().set_nominal_bandwidth(mib_per_sec(20));
  master.migrate(blocks_on_all(4, 1));  // block ids reused: fine, new entries
  ASSERT_TRUE(master.wait_idle(30s));
  EXPECT_GT(master.slave(NodeId(0)).sec_per_byte(), fast * 3);
}

TEST(RtMaster, ConcurrentMigrateCalls) {
  RtMaster master({.slaves = {slave_opts(0, mib_per_sec(300)), slave_opts(1, mib_per_sec(300)),
                              slave_opts(2, mib_per_sec(300))},
                   .retarget_interval = 2ms});
  std::vector<std::jthread> submitters;
  for (int t = 0; t < 4; ++t) {
    submitters.emplace_back([&master, t] {
      std::vector<RtBlock> blocks;
      for (int i = 0; i < 5; ++i) {
        RtBlock b;
        b.block = BlockId(t * 100 + i);
        b.size = mib(1);
        b.replicas = {NodeId(0), NodeId(1), NodeId(2)};
        blocks.push_back(std::move(b));
      }
      master.migrate(blocks);
    });
  }
  submitters.clear();  // join all
  ASSERT_TRUE(master.wait_idle(30s));
  EXPECT_EQ(master.completed(), 20);
}

TEST(RtMaster, CancelPendingMigration) {
  RtMaster master({.slaves = {slave_opts(0, mib_per_sec(1))}, .retarget_interval = 2ms});
  master.migrate(blocks_on_all(10, 1));
  // Most blocks still pending or queued; cancel one that can't have run.
  EXPECT_TRUE(master.cancel(BlockId(9)));
  EXPECT_FALSE(master.cancel(BlockId(9)));
  EXPECT_FALSE(master.cancel(BlockId(999)));
}

TEST(RtMaster, CancelActiveMigrationUnblocksQuickly) {
  // One slow slave; the first block would take ~8s. Cancelling everything
  // lets wait_idle succeed almost immediately.
  RtMaster master({.slaves = {slave_opts(0, mib_per_sec(1))}, .retarget_interval = 2ms});
  master.migrate(blocks_on_all(3, 1, mib(8)));
  std::this_thread::sleep_for(50ms);  // let the first read start
  int cancelled = 0;
  for (int b = 0; b < 3; ++b) {
    // A block in flight between master pull and slave enqueue is briefly
    // invisible to cancel; retry covers that hand-off window.
    for (int attempt = 0; attempt < 100; ++attempt) {
      if (master.cancel(BlockId(b))) {
        ++cancelled;
        break;
      }
      std::this_thread::sleep_for(2ms);
    }
  }
  EXPECT_EQ(cancelled, 3);
  EXPECT_TRUE(master.wait_idle(5s));
  EXPECT_EQ(master.completed(), 0);
  EXPECT_EQ(master.slave(NodeId(0)).buffered_count(), 0u);
}

TEST(RtMaster, ShutdownIsIdempotentAndSafeWithPendingWork) {
  auto master = std::make_unique<RtMaster>(
      RtMaster::Options{.slaves = {slave_opts(0, mib_per_sec(1))}, .retarget_interval = 2ms});
  master->migrate(blocks_on_all(50, 1));  // would take ~50s: shut down early
  std::this_thread::sleep_for(30ms);
  master->shutdown();
  master->shutdown();
  master.reset();  // no hang, no crash
  SUCCEED();
}

TEST(RtMaster, WaitIdleTimesOutWhenBusy) {
  RtMaster master({.slaves = {slave_opts(0, mib_per_sec(1))}, .retarget_interval = 2ms});
  master.migrate(blocks_on_all(3, 1));
  EXPECT_FALSE(master.wait_idle(30ms));
}

TEST(RtMaster, CancelRacesBoundTransfer) {
  // Migrate one tiny block per round and cancel immediately: the cancel
  // lands before the pull, mid-transfer, or after the read already
  // finished. A cancel and a completion must never both settle the same
  // migration — if they did, the outstanding count would go negative and
  // completed + cancelled would exceed the rounds.
  RtMaster master({.slaves = {slave_opts(0, mib_per_sec(400))}, .retarget_interval = 1ms});
  const int rounds = 60;
  long cancelled = 0;
  for (int i = 0; i < rounds; ++i) {
    master.migrate(blocks_on_all(1, 1, 64 * kKiB));  // ~160us transfer
    if (i % 3 != 0) std::this_thread::sleep_for(std::chrono::microseconds(i * 7 % 300));
    if (master.cancel(BlockId(0))) ++cancelled;
    ASSERT_TRUE(master.wait_idle(10s)) << "round " << i << " never settled";
  }
  EXPECT_EQ(master.completed() + cancelled, rounds);
}

TEST(RtMaster, WaitIdleReturnsWhenShutdownDiscardsWork) {
  // shutdown() discards queued work; a waiter must observe that and give
  // up (returning false: not drained) instead of sleeping out its timeout.
  RtMaster master({.slaves = {slave_opts(0, mib_per_sec(1))}, .retarget_interval = 2ms});
  master.migrate(blocks_on_all(5, 1));  // ~5s of work on a 1MiB/s disk
  std::jthread stopper([&master] {
    std::this_thread::sleep_for(50ms);
    master.shutdown();
  });
  const auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(master.wait_idle(30s));
  const double s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  EXPECT_LT(s, 5.0);
}

TEST(RtMaster, SmallestJobFirstBindsSmallJobFirst) {
  // Job 1 has six 1MiB blocks, job 2 a single one. Under SJF the lone
  // block of the smaller job must be the node's first binding even though
  // it was enqueued last (one migrate() call: the full queue is visible
  // before the worker's first pull).
  RtMaster master({.slaves = {slave_opts(0, mib_per_sec(200))},
                   .retarget_interval = 2ms,
                   .ordering = core::Ordering::SmallestJobFirst});
  std::vector<RtBlock> blocks;
  for (int i = 0; i < 6; ++i) blocks.push_back({BlockId(i), mib(1), {NodeId(0)}, JobId(1)});
  blocks.push_back({BlockId(100), mib(1), {NodeId(0)}, JobId(2)});
  master.migrate(blocks);
  ASSERT_TRUE(master.wait_idle(10s));
  const auto log = master.binding_log();
  ASSERT_EQ(log.size(), 7u);
  EXPECT_EQ(log[0].first, BlockId(100));
  EXPECT_EQ(master.completed_per_job()[JobId(2)], 1);
  EXPECT_EQ(master.completed_per_job()[JobId(1)], 6);
}

TEST(RtMaster, RetryExhaustionRetargetsAwayFromBadReplica) {
  // The block targets the fast node 0 first (8x bandwidth), where every
  // read fails. After the local retry budget is exhausted the master must
  // requeue it with node 0 on the avoid list and Algorithm 1 re-targets
  // the surviving replica.
  auto fast = slave_opts(0, mib_per_sec(400));
  auto slow = slave_opts(1, mib_per_sec(50));
  fast.retry = {.max_attempts = 3, .backoff = milliseconds(1), .backoff_cap = milliseconds(4)};
  RtMaster master({.slaves = {fast, slow}, .retarget_interval = 2ms});
  // FaultSurface-style read-fault hook: the first 3 reads of block 7 fail.
  master.slave(NodeId(0)).set_read_fault_hook(
      [count = std::make_shared<std::atomic<int>>(3)](BlockId b) {
        return b == BlockId(7) && count->fetch_sub(1) > 0;
      });
  master.migrate({{BlockId(7), mib(1), {NodeId(0), NodeId(1)}, JobId(1)}});
  ASSERT_TRUE(master.wait_idle(10s));
  EXPECT_EQ(master.completed(), 1);
  EXPECT_EQ(master.completed_per_node()[NodeId(1)], 1);
  EXPECT_EQ(master.requeued(), 1);
  EXPECT_EQ(master.slave(NodeId(0)).retries(), 2);  // attempts 1 and 2 retried locally
  EXPECT_EQ(master.slave(NodeId(0)).permanent_failures(), 1);
  EXPECT_EQ(master.slave(NodeId(1)).completed(), 1);
}

TEST(RtMaster, UntargetableMigrationIsDroppedNotHung) {
  // Every replica holder failed permanently: nothing can ever bind the
  // block, so the master must settle it (abort) instead of leaving
  // wait_idle() to hang on an unbindable entry.
  auto opts = slave_opts(0, mib_per_sec(400));
  opts.retry = {.max_attempts = 2, .backoff = milliseconds(1), .backoff_cap = milliseconds(2)};
  RtMaster master({.slaves = {opts}, .retarget_interval = 2ms});
  // FaultSurface-style read-fault hook: the first 2 reads of block 3 fail.
  master.slave(NodeId(0)).set_read_fault_hook(
      [count = std::make_shared<std::atomic<int>>(2)](BlockId b) {
        return b == BlockId(3) && count->fetch_sub(1) > 0;
      });
  master.migrate({{BlockId(3), mib(1), {NodeId(0)}, JobId(1)}});
  ASSERT_TRUE(master.wait_idle(10s));
  EXPECT_EQ(master.completed(), 0);
  EXPECT_EQ(master.requeued(), 1);
  EXPECT_EQ(master.pending(), 0u);
  EXPECT_EQ(master.slave(NodeId(0)).permanent_failures(), 1);
}

TEST(RtMaster, MergesDuplicateBlockAndTracksPerJobCompletions) {
  // Block 4 is requested by both jobs in the same batch: one lifecycle,
  // one transfer, but both jobs' accounting and buffer references.
  RtMaster master({.slaves = {slave_opts(0, mib_per_sec(400))}, .retarget_interval = 2ms});
  std::vector<RtBlock> blocks = {{BlockId(0), mib(1), {NodeId(0)}, JobId(1)},
                                 {BlockId(1), mib(1), {NodeId(0)}, JobId(1)},
                                 {BlockId(2), mib(1), {NodeId(0)}, JobId(2)},
                                 {BlockId(3), mib(1), {NodeId(0)}, JobId(2)},
                                 {BlockId(4), mib(1), {NodeId(0)}, JobId(1)},
                                 {BlockId(4), mib(1), {NodeId(0)}, JobId(2)}};
  master.migrate(blocks);
  ASSERT_TRUE(master.wait_idle(10s));
  EXPECT_EQ(master.completed(), 5);  // block 4 migrated once
  EXPECT_EQ(master.completed_per_job()[JobId(1)], 3);
  EXPECT_EQ(master.completed_per_job()[JobId(2)], 3);
  EXPECT_EQ(master.slave(NodeId(0)).buffered_count(), 5u);

  // Evicting job 1 releases only the buffers no other job references;
  // the shared block 4 survives until job 2 goes too.
  master.evict_job(JobId(1));
  EXPECT_EQ(master.slave(NodeId(0)).buffered_count(), 3u);
  master.evict_job(JobId(2));
  EXPECT_EQ(master.slave(NodeId(0)).buffered_count(), 0u);
}

/// Per-block `type@node` signature, the run-stable projection of a merged
/// rt trace.
std::map<std::int64_t, std::string> block_signatures(const std::vector<obs::TraceEvent>& events) {
  std::map<std::int64_t, std::string> per_block;
  for (const obs::TraceEvent& e : events) {
    if (e.type.rfind("mig_", 0) != 0) continue;
    const std::int64_t block = e.i64("block");
    if (block < 0) continue;
    std::string& line = per_block[block];
    if (!line.empty()) line += ' ';
    line += e.type;
    const std::int64_t node = e.i64("node");
    if (node >= 0) {
      line += '@';
      line += std::to_string(node);
    }
  }
  return per_block;
}

/// Mini soak with tracing: 12 fast single-replica blocks on nodes 0/1, 4
/// slow blocks pinned to a crippled node 2, one deterministic pending
/// cancel. Single-replica blocks make the schedule timing-independent.
std::vector<obs::TraceEvent> traced_run() {
  obs::MetricsRegistry registry;
  obs::Tracer tracer;
  obs::ThreadLocalBufferSink sink;
  tracer.set_sink(&sink);
  RtMaster::Options options;
  options.slaves = {slave_opts(0, mib_per_sec(256)), slave_opts(1, mib_per_sec(256)),
                    slave_opts(2, mib_per_sec(4))};
  options.retarget_interval = 2ms;
  options.obs = obs::ObsContext(&registry, &tracer);
  RtMaster master(std::move(options));
  std::vector<RtBlock> blocks;
  for (int i = 0; i < 12; ++i) {
    blocks.push_back({BlockId(i), 256 * kKiB, {NodeId(i % 2)}});
  }
  for (int i = 0; i < 4; ++i) {
    blocks.push_back({BlockId(100 + i), 256 * kKiB, {NodeId(2)}});
  }
  master.migrate(blocks);
  // Node 2 holds at most 3 blocks this early (1 active + 2 queued), each
  // taking 62.5ms, so block 103 is still pending: a node-less abort.
  EXPECT_TRUE(master.cancel(BlockId(103)));
  EXPECT_TRUE(master.wait_idle(30s));
  master.shutdown();  // quiesce emitters before reading buffers
  return sink.merge_thread_buffers();
}

TEST(RtTrace, DeterministicPerBlockOrder) {
  const auto run1 = block_signatures(traced_run());
  const auto run2 = block_signatures(traced_run());
  EXPECT_EQ(run1, run2);
  ASSERT_EQ(run1.size(), 16u);
  EXPECT_EQ(run1.at(103), "mig_enqueue mig_abort");
  EXPECT_EQ(run1.at(0),
            "mig_enqueue mig_target@0 mig_bind@0 mig_transfer_start@0 mig_complete@0");
}

TEST(RtMaster, AccessorPollingDoesNotStallOnMasterLock) {
  // Regression: completed()/completed_per_node()/completed_per_job() used
  // to copy whole maps under the master mutex. With 20k pending entries
  // and a 1ms retarget interval, the reference Algorithm 1 sweep holds mu_
  // almost continuously — accessor polls that contended on it would take
  // milliseconds each. The sharded accessors snapshot lock-free counters
  // and per-shard accounting, so 2000 polls stay well under the bound even
  // while the sweep thread saturates the lock.
  RtMaster::Options options;
  options.slaves = {slave_opts(0, mib_per_sec(4)), slave_opts(1, mib_per_sec(4))};
  options.retarget_interval = 1ms;
  options.exchange = {.mode = RtMaster::Options::ExchangeConfig::Mode::Sharded,
                      .shards = 8,
                      .drain_batch = 8};
  RtMaster master(std::move(options));
  master.migrate(blocks_on_all(20000, 2));

  const auto start = std::chrono::steady_clock::now();
  long sink = 0;
  for (int i = 0; i < 2000; ++i) {
    sink += master.completed();
    for (const auto& [node, n] : master.completed_per_node()) sink += n;
    for (const auto& [job, n] : master.completed_per_job()) sink += n;
  }
  const double s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  EXPECT_GE(sink, 0);
  // Under TSan every access is instrumented; only assert the bound in
  // uninstrumented builds where the timing claim is meaningful.
#if defined(__SANITIZE_THREAD__)
#define DYRS_RT_TEST_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define DYRS_RT_TEST_TSAN 1
#endif
#endif
#ifndef DYRS_RT_TEST_TSAN
  EXPECT_LT(s, 2.0) << "accessor polls stalled on the master lock";
#endif
  master.shutdown();  // tear down without draining the backlog
}

TEST(RtTrace, SatisfiesRtInvariants) {
  obs::TraceReader reader(traced_run());
  obs::TraceInvariants oracle;
  oracle.profile = obs::TraceInvariants::Profile::Rt;
  oracle.flag_open_lifecycles = true;  // every lifecycle must have settled
  const obs::InvariantReport report = oracle.check(reader);
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_EQ(report.lifecycles_closed, 16u);
  EXPECT_EQ(report.open_at_end, 0u);
}

}  // namespace
}  // namespace dyrs::rt
