// Tier behaviour of the real-threaded backend: settlement-time admission
// into the CountingTier pair, capacity-pressure demotion (memory -> SSD ->
// disk), per-tier gauges and the demotion counter, mig_demote events that
// stay oracle-clean in the merged trace, and demotions composing with the
// failure detector's crash/requeue path.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

#include "faults/rt_fault_injector.h"
#include "obs/metrics_registry.h"
#include "obs/thread_buffer_sink.h"
#include "obs/trace.h"
#include "obs/trace_invariants.h"
#include "obs/trace_reader.h"
#include "rt/master.h"

namespace dyrs::rt {
namespace {

using namespace std::chrono_literals;

constexpr Bytes kBlock = mib(1);

RtSlave::Options tier_slave(int node, Bytes memory_capacity, Bytes ssd_capacity = 0) {
  RtSlave::Options o;
  o.node = NodeId(node);
  o.disk_bandwidth = mib_per_sec(64);
  o.queue_capacity = 2;
  o.reference_block = kBlock;
  o.memory_capacity = memory_capacity;
  o.ssd_capacity = ssd_capacity;
  return o;
}

core::TierPolicy evict_cold() {
  core::TierPolicy p;
  p.on_pressure = core::TierPolicy::OnPressure::EvictColdFirst;
  return p;
}

std::vector<RtBlock> single_node_blocks(int count) {
  std::vector<RtBlock> blocks;
  for (int i = 0; i < count; ++i) blocks.push_back({BlockId(i), kBlock, {NodeId(0)}, JobId(1)});
  return blocks;
}

TEST(RtTier, PressureDemotesToSsdAtSettlement) {
  RtMaster::Options options;
  options.slaves = {tier_slave(0, 2 * kBlock)};
  options.tier = evict_cold();  // forwarded: the slave left its knob default
  RtMaster master(std::move(options));

  master.migrate(single_node_blocks(6));
  ASSERT_TRUE(master.wait_idle(30s));

  RtSlave& slave = master.slave(NodeId(0));
  EXPECT_EQ(master.completed(), 6);
  EXPECT_EQ(slave.demotions(), 4);
  EXPECT_EQ(slave.buffered_count(), 6u);  // demoted blocks stay buffered
  EXPECT_EQ(slave.memory_tier_bytes(), 2 * kBlock);
  EXPECT_EQ(slave.ssd_tier_bytes(), 4 * kBlock);

  // Admissions in settlement order, each demotion logged as it happened.
  const auto log = slave.tier_log();
  int admissions = 0, demotes = 0;
  for (const auto& d : log) {
    if (d.from == Tier::Disk) ++admissions;
    if (d.from == Tier::Memory && d.to == Tier::Ssd) ++demotes;
  }
  EXPECT_EQ(admissions, 6);
  EXPECT_EQ(demotes, 4);
  master.shutdown();
}

TEST(RtTier, GaugesAndDemotionCounterTrackTiers) {
  obs::MetricsRegistry registry;
  obs::Tracer tracer;
  obs::ThreadLocalBufferSink sink;
  tracer.set_sink(&sink);

  RtMaster::Options options;
  options.slaves = {tier_slave(0, 2 * kBlock)};
  options.tier = evict_cold();
  options.obs = obs::ObsContext(&registry, &tracer);
  RtMaster master(std::move(options));

  master.migrate(single_node_blocks(6));
  ASSERT_TRUE(master.wait_idle(30s));

  EXPECT_EQ(registry.gauge("node0.tier.memory.used_bytes").value(),
            static_cast<double>(master.slave(NodeId(0)).memory_tier_bytes()));
  EXPECT_EQ(registry.gauge("node0.tier.ssd.used_bytes").value(),
            static_cast<double>(master.slave(NodeId(0)).ssd_tier_bytes()));
  EXPECT_EQ(registry.counter("dyrs.migrations.demoted").value(),
            master.slave(NodeId(0)).demotions());

  // The merged trace carries the demote lifecycle and satisfies the rt
  // invariant profile, demote rule included.
  master.shutdown();
  obs::TraceInvariants oracle;
  oracle.profile = obs::TraceInvariants::Profile::Rt;
  oracle.flag_open_lifecycles = true;
  const auto report = oracle.check(obs::TraceReader(sink.merge_thread_buffers()));
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_EQ(report.demotions, 4u);
}

TEST(RtTier, SsdCapCascadesToDisk) {
  RtMaster::Options options;
  options.slaves = {tier_slave(0, 2 * kBlock, /*ssd_capacity=*/kBlock)};
  options.tier = evict_cold();
  RtMaster master(std::move(options));

  master.migrate(single_node_blocks(6));
  ASSERT_TRUE(master.wait_idle(30s));

  RtSlave& slave = master.slave(NodeId(0));
  EXPECT_EQ(master.completed(), 6);
  EXPECT_EQ(slave.memory_tier_bytes(), 2 * kBlock);
  EXPECT_EQ(slave.ssd_tier_bytes(), kBlock);
  EXPECT_EQ(slave.buffered_count(), 3u);  // the rest fell off the bottom
  int to_disk = 0;
  for (const auto& d : slave.tier_log()) {
    if (d.to == Tier::Disk) ++to_disk;
  }
  EXPECT_EQ(to_disk, 3);
  master.shutdown();
}

TEST(RtTier, RefuseAdmissionStillSettlesMigrations) {
  // Default policy: a full memory tier refuses new blocks, but the rt
  // backend settles them anyway (the data was read; it just isn't kept).
  RtMaster::Options options;
  options.slaves = {tier_slave(0, 2 * kBlock)};
  RtMaster master(std::move(options));

  master.migrate(single_node_blocks(6));
  ASSERT_TRUE(master.wait_idle(30s));

  RtSlave& slave = master.slave(NodeId(0));
  EXPECT_EQ(master.completed(), 6);
  EXPECT_EQ(slave.demotions(), 0);
  EXPECT_EQ(slave.buffered_count(), 2u);
  EXPECT_EQ(slave.memory_tier_bytes(), 2 * kBlock);
  EXPECT_EQ(slave.ssd_tier_bytes(), 0);
  master.shutdown();
}

TEST(RtTier, EvictJobReleasesBothTiers) {
  RtMaster::Options options;
  options.slaves = {tier_slave(0, 2 * kBlock)};
  options.tier = evict_cold();
  RtMaster master(std::move(options));

  master.migrate(single_node_blocks(6));
  ASSERT_TRUE(master.wait_idle(30s));
  ASSERT_GT(master.slave(NodeId(0)).ssd_tier_bytes(), 0);

  master.evict_job(JobId(1));
  RtSlave& slave = master.slave(NodeId(0));
  EXPECT_EQ(slave.buffered_count(), 0u);
  EXPECT_EQ(slave.memory_tier_bytes(), 0);
  EXPECT_EQ(slave.ssd_tier_bytes(), 0);
  master.shutdown();
}

// A slave crash mid-run under tier pressure: its buffered blocks (both
// tiers) die with the process, the failure detector requeues the bound
// work to the survivor, and the survivor's own demotions proceed — the
// whole episode staying oracle-clean.
TEST(RtTier, DemotionsComposeWithCrashRequeue) {
  obs::MetricsRegistry registry;
  obs::Tracer tracer;
  obs::ThreadLocalBufferSink sink;
  tracer.set_sink(&sink);

  RtMaster::Options options;
  options.slaves = {tier_slave(0, 2 * kBlock), tier_slave(1, 2 * kBlock)};
  options.tier = evict_cold();
  options.retarget_interval = 2ms;
  options.failure_detection.enabled = true;
  options.failure_detection.monitor_interval = 5ms;
  options.failure_detection.suspect_after = 60ms;
  options.failure_detection.declare_dead_after = 150ms;
  options.obs = obs::ObsContext(&registry, &tracer);
  RtMaster master(std::move(options));

  std::vector<RtBlock> blocks;
  for (int i = 0; i < 16; ++i) {
    blocks.push_back({BlockId(i), kBlock, {NodeId(0), NodeId(1)}, JobId(1)});
  }

  faults::RtFaultInjector injector(master, /*seed=*/11);
  faults::FaultPlan plan;
  plan.crash_process(NodeId(1), milliseconds(40), milliseconds(3000));
  injector.install(plan);

  master.migrate(blocks);
  ASSERT_TRUE(master.wait_idle(60s));
  EXPECT_EQ(master.completed(), 16);
  EXPECT_EQ(master.pending(), 0u);

  // Everything not settled before the crash ended up on node 0, whose
  // 2-block cap forces most of it down to SSD.
  RtSlave& survivor = master.slave(NodeId(0));
  EXPECT_GT(survivor.demotions(), 0);
  EXPECT_EQ(survivor.memory_tier_bytes(), 2 * kBlock);
  EXPECT_GT(survivor.ssd_tier_bytes(), 0);

  ASSERT_TRUE(injector.wait_done(10000ms));
  master.shutdown();
  obs::TraceInvariants oracle;
  oracle.profile = obs::TraceInvariants::Profile::RtFaults;
  oracle.flag_open_lifecycles = true;
  const auto report = oracle.check(obs::TraceReader(sink.merge_thread_buffers()));
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_GT(report.demotions, 0u);
}

}  // namespace
}  // namespace dyrs::rt
