// Property tests for the processor-sharing resource: conservation laws and
// ordering invariants under randomized flow churn.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "common/random.h"
#include "common/units.h"
#include "sim/fair_share.h"

namespace dyrs::sim {
namespace {

class FairSharePropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

// Conservation: payload moved by completed flows exactly matches the sum of
// their sizes, and total bytes never exceed capacity * busy time (equality
// only without a seek penalty).
TEST_P(FairSharePropertyTest, ByteConservationUnderChurn) {
  Rng rng(GetParam());
  Simulator sim;
  const double alpha = rng.bernoulli(0.5) ? 0.0 : rng.uniform(0.05, 0.4);
  FairShareResource r(sim, {.name = "d", .capacity = mib_per_sec(100), .seek_alpha = alpha});

  Bytes submitted = 0;
  Bytes completed_bytes = 0;
  int completed = 0;
  const int flows = static_cast<int>(rng.uniform_int(5, 40));
  for (int i = 0; i < flows; ++i) {
    const Bytes size = mib(rng.uniform_int(1, 64));
    submitted += size;
    const auto at = seconds(rng.uniform(0.0, 20.0));
    sim.schedule_at(at, [&r, &completed, &completed_bytes, size]() {
      r.start_flow(size, [&completed, &completed_bytes, size](SimTime) {
        ++completed;
        completed_bytes += size;
      });
    });
  }
  sim.run();
  EXPECT_EQ(completed, flows);
  EXPECT_EQ(completed_bytes, submitted);
  EXPECT_NEAR(r.total_bytes_transferred(), static_cast<double>(submitted),
              static_cast<double>(flows) * 1024.0);
  // Throughput bound: with penalty, strictly below capacity*busy.
  EXPECT_LE(r.total_bytes_transferred(), mib_per_sec(100) * r.busy_seconds() * 1.001);
}

// Monotonicity: adding an interference flow never makes any finite flow
// finish earlier.
TEST_P(FairSharePropertyTest, InterferenceNeverSpeedsAnythingUp) {
  Rng rng(GetParam() + 1000);
  const int flows = static_cast<int>(rng.uniform_int(2, 10));
  std::vector<Bytes> sizes;
  std::vector<SimTime> starts;
  for (int i = 0; i < flows; ++i) {
    sizes.push_back(mib(rng.uniform_int(1, 32)));
    starts.push_back(seconds(rng.uniform(0.0, 5.0)));
  }

  auto run_once = [&](bool interference) {
    Simulator sim;
    FairShareResource r(sim, {.name = "d", .capacity = mib_per_sec(100), .seek_alpha = 0.15});
    if (interference) r.start_interference();
    std::map<int, SimTime> done;
    for (int i = 0; i < flows; ++i) {
      sim.schedule_at(starts[static_cast<std::size_t>(i)], [&r, &done, &sizes, i]() {
        r.start_flow(sizes[static_cast<std::size_t>(i)],
                     [&done, i](SimTime t) { done[i] = t; });
      });
    }
    sim.run_until(hours(1));
    return done;
  };

  auto base = run_once(false);
  auto loaded = run_once(true);
  ASSERT_EQ(base.size(), static_cast<std::size_t>(flows));
  ASSERT_EQ(loaded.size(), static_cast<std::size_t>(flows));
  for (int i = 0; i < flows; ++i) {
    EXPECT_GE(loaded[i], base[i]) << "flow " << i;
  }
}

// Determinism: identical schedules produce bit-identical completions.
TEST_P(FairSharePropertyTest, DeterministicCompletionTimes) {
  auto run_once = [&]() {
    Rng rng(GetParam() + 2000);
    Simulator sim;
    FairShareResource r(sim, {.name = "d", .capacity = mib_per_sec(77), .seek_alpha = 0.2});
    std::vector<SimTime> done;
    for (int i = 0; i < 20; ++i) {
      const Bytes size = mib(rng.uniform_int(1, 16));
      sim.schedule_at(seconds(rng.uniform(0.0, 3.0)),
                      [&r, &done, size]() {
                        r.start_flow(size, [&done](SimTime t) { done.push_back(t); });
                      });
    }
    sim.run();
    return done;
  };
  EXPECT_EQ(run_once(), run_once());
}

INSTANTIATE_TEST_SUITE_P(Seeds, FairSharePropertyTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

}  // namespace
}  // namespace dyrs::sim
