#include "sim/fair_share.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/units.h"

namespace dyrs::sim {
namespace {

constexpr Rate kBw = mib_per_sec(100);

FairShareResource::Options opts(double alpha = 0.0) {
  return {.name = "d", .capacity = kBw, .seek_alpha = alpha};
}

TEST(FairShare, SingleFlowFinishesAtExactTime) {
  Simulator sim;
  FairShareResource r(sim, opts());
  SimTime done = -1;
  r.start_flow(mib(100), [&](SimTime t) { done = t; });
  sim.run();
  EXPECT_NEAR(to_seconds(done), 1.0, 1e-5);
  EXPECT_EQ(r.active_flows(), 0);
}

TEST(FairShare, TwoFlowsShareEqually) {
  Simulator sim;
  FairShareResource r(sim, opts());
  SimTime a = -1, b = -1;
  r.start_flow(mib(100), [&](SimTime t) { a = t; });
  r.start_flow(mib(100), [&](SimTime t) { b = t; });
  sim.run();
  // Equal flows sharing 100MiB/s: both finish at 2s.
  EXPECT_NEAR(to_seconds(a), 2.0, 1e-5);
  EXPECT_NEAR(to_seconds(b), 2.0, 1e-5);
}

TEST(FairShare, ShorterFlowFinishesFirstThenRatesRise) {
  Simulator sim;
  FairShareResource r(sim, opts());
  SimTime small = -1, large = -1;
  r.start_flow(mib(50), [&](SimTime t) { small = t; });
  r.start_flow(mib(150), [&](SimTime t) { large = t; });
  sim.run();
  // Shared until small drains: each at 50MiB/s, small done at t=1s having
  // moved 50; large has 100 left, now alone at 100MiB/s → done at t=2s.
  EXPECT_NEAR(to_seconds(small), 1.0, 1e-5);
  EXPECT_NEAR(to_seconds(large), 2.0, 1e-5);
}

TEST(FairShare, LateArrivalSlowsExisting) {
  Simulator sim;
  FairShareResource r(sim, opts());
  SimTime first = -1;
  r.start_flow(mib(100), [&](SimTime t) { first = t; });
  sim.schedule_at(seconds(0.5), [&] { r.start_flow(mib(100), nullptr); });
  sim.run();
  // 0.5s alone (50MiB), then shared at 50MiB/s for remaining 50MiB → 1s
  // more → finishes at 1.5s.
  EXPECT_NEAR(to_seconds(first), 1.5, 1e-4);
}

TEST(FairShare, InterferenceTakesAShareForever) {
  Simulator sim;
  FairShareResource r(sim, opts());
  r.start_interference();
  SimTime done = -1;
  r.start_flow(mib(100), [&](SimTime t) { done = t; });
  sim.run_until(seconds(10));
  // Flow gets half the bandwidth → 2s.
  EXPECT_NEAR(to_seconds(done), 2.0, 1e-4);
  EXPECT_EQ(r.active_flows(), 1);
  EXPECT_EQ(r.active_interference_flows(), 1);
}

TEST(FairShare, SeekPenaltyReducesAggregate) {
  Simulator sim;
  FairShareResource r(sim, opts(/*alpha=*/0.5));
  SimTime a = -1, b = -1;
  r.start_flow(mib(75), [&](SimTime t) { a = t; });
  r.start_flow(mib(75), [&](SimTime t) { b = t; });
  sim.run();
  // n=2 → aggregate = 100/(1+0.5) = 66.67 MiB/s → each 33.3 MiB/s → 2.25s.
  EXPECT_NEAR(to_seconds(a), 2.25, 1e-4);
  EXPECT_NEAR(to_seconds(b), 2.25, 1e-4);
}

TEST(FairShare, SerializedBeatsConcurrentWithSeekPenalty) {
  // The design rationale for DYRS serializing migrations (§III-B): with a
  // seek penalty, running two block reads concurrently takes longer in
  // aggregate than back-to-back.
  const Bytes block = mib(100);

  // Concurrent.
  Simulator sim1;
  FairShareResource r1(sim1, opts(/*alpha=*/0.3));
  SimTime last_concurrent = -1;
  r1.start_flow(block, nullptr);
  r1.start_flow(block, [&](SimTime t) { last_concurrent = t; });
  sim1.run();

  // Serialized.
  Simulator sim2;
  FairShareResource r2(sim2, opts(/*alpha=*/0.3));
  SimTime last_serial = -1;
  r2.start_flow(block, [&](SimTime) {
    r2.start_flow(block, [&](SimTime t2) { last_serial = t2; });
  });
  sim2.run();

  EXPECT_GT(last_concurrent, last_serial);
  EXPECT_NEAR(to_seconds(last_serial), 2.0, 1e-4);
  EXPECT_NEAR(to_seconds(last_concurrent), 2.6, 1e-3);  // 200/(100/1.3)
}

TEST(FairShare, CancelStopsCallbackAndFreesShare) {
  Simulator sim;
  FairShareResource r(sim, opts());
  bool cancelled_fired = false;
  SimTime done = -1;
  auto id = r.start_flow(mib(100), [&](SimTime) { cancelled_fired = true; });
  r.start_flow(mib(100), [&](SimTime t) { done = t; });
  sim.schedule_at(seconds(1), [&] { r.cancel_flow(id); });
  sim.run();
  EXPECT_FALSE(cancelled_fired);
  // Survivor: 1s shared (50MiB) + 50MiB alone (0.5s) → 1.5s.
  EXPECT_NEAR(to_seconds(done), 1.5, 1e-4);
}

TEST(FairShare, CancelUnknownIdIsNoop) {
  Simulator sim;
  FairShareResource r(sim, opts());
  r.cancel_flow(12345);
  EXPECT_EQ(r.active_flows(), 0);
}

TEST(FairShare, CapacityChangeMidFlow) {
  Simulator sim;
  FairShareResource r(sim, opts());
  SimTime done = -1;
  r.start_flow(mib(100), [&](SimTime t) { done = t; });
  sim.schedule_at(seconds(0.5), [&] { r.set_capacity(mib_per_sec(50)); });
  sim.run();
  // 0.5s at 100 (50MiB) + 50MiB at 50MiB/s (1s) → 1.5s.
  EXPECT_NEAR(to_seconds(done), 1.5, 1e-4);
}

TEST(FairShare, ZeroCapacityStallsUntilRestored) {
  Simulator sim;
  FairShareResource r(sim, opts());
  SimTime done = -1;
  r.start_flow(mib(100), [&](SimTime t) { done = t; });
  sim.schedule_at(seconds(0.5), [&] { r.set_capacity(0.0); });
  sim.schedule_at(seconds(5), [&] { r.set_capacity(kBw); });
  sim.run();
  // 50MiB before stall; stalled 4.5s; remaining 50MiB takes 0.5s → 5.5s.
  EXPECT_NEAR(to_seconds(done), 5.5, 1e-4);
}

TEST(FairShare, RemainingBytesTracksProgress) {
  Simulator sim;
  FairShareResource r(sim, opts());
  auto id = r.start_flow(mib(100), nullptr);
  sim.run_until(seconds(0.25));
  EXPECT_NEAR(to_mib(r.remaining_bytes(id)), 75.0, 0.01);
  sim.run();
  EXPECT_EQ(r.remaining_bytes(id), 0);
}

TEST(FairShare, AccountingTotals) {
  Simulator sim;
  FairShareResource r(sim, opts());
  r.start_flow(mib(60), nullptr);
  r.start_flow(mib(40), nullptr);
  sim.run();
  EXPECT_NEAR(r.total_bytes_transferred(), static_cast<double>(mib(100)), 1024.0);
  // Shared 50MiB/s until t=0.8 (40MiB flow drains), then the 60MiB flow's
  // last 20MiB run alone at 100MiB/s → busy until t=1.0.
  EXPECT_NEAR(r.busy_seconds(), 1.0, 0.01);
}

TEST(FairShare, CompletionCallbackCanStartNewFlow) {
  Simulator sim;
  FairShareResource r(sim, opts());
  std::vector<double> completion_s;
  std::function<void(SimTime)> chain = [&](SimTime t) {
    completion_s.push_back(to_seconds(t));
    if (completion_s.size() < 3) r.start_flow(mib(50), chain);
  };
  r.start_flow(mib(50), chain);
  sim.run();
  ASSERT_EQ(completion_s.size(), 3u);
  EXPECT_NEAR(completion_s[0], 0.5, 1e-4);
  EXPECT_NEAR(completion_s[1], 1.0, 1e-4);
  EXPECT_NEAR(completion_s[2], 1.5, 1e-4);
}

TEST(FairShare, UnloadedDuration) {
  Simulator sim;
  FairShareResource r(sim, opts());
  EXPECT_NEAR(to_seconds(r.unloaded_duration(mib(100))), 1.0, 1e-6);
  EXPECT_EQ(r.unloaded_duration(0), 0);
}

TEST(FairShare, ManyFlowsDrainCompletely) {
  Simulator sim;
  FairShareResource r(sim, opts(0.1));
  int completed = 0;
  for (int i = 1; i <= 50; ++i) {
    r.start_flow(mib(i), [&](SimTime) { ++completed; });
  }
  sim.run();
  EXPECT_EQ(completed, 50);
  EXPECT_EQ(r.active_flows(), 0);
}

}  // namespace
}  // namespace dyrs::sim
