#include <gtest/gtest.h>

#include <optional>

#include "common/units.h"
#include "sim/simulator.h"

namespace dyrs::sim {
namespace {

TEST(NextEventTime, EmptyWhenIdle) {
  Simulator sim;
  EXPECT_EQ(sim.next_event_time(), std::nullopt);
}

TEST(NextEventTime, ReportsEarliestRunnable) {
  Simulator sim;
  sim.schedule_at(seconds(5), [] {});
  auto early = sim.schedule_at(seconds(2), [] {});
  EXPECT_EQ(sim.next_event_time(), seconds(2));
  early.cancel();
  EXPECT_EQ(sim.next_event_time(), seconds(5));
}

TEST(NextEventTime, AdvancesAsEventsFire) {
  Simulator sim;
  sim.schedule_at(seconds(1), [] {});
  sim.schedule_at(seconds(3), [] {});
  sim.step();
  EXPECT_EQ(sim.next_event_time(), seconds(3));
  sim.step();
  EXPECT_FALSE(sim.next_event_time().has_value());
}

// Time 0 is a legitimate event time; the old -1 sentinel design made it
// easy to conflate "event at t<=0" with "idle".
TEST(NextEventTime, TimeZeroEventIsDistinguishableFromIdle) {
  Simulator sim;
  sim.schedule_at(0, [] {});
  const auto next = sim.next_event_time();
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(*next, 0);
}

}  // namespace
}  // namespace dyrs::sim
