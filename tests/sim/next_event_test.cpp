#include <gtest/gtest.h>

#include "common/units.h"
#include "sim/simulator.h"

namespace dyrs::sim {
namespace {

TEST(NextEventTime, MinusOneWhenIdle) {
  Simulator sim;
  EXPECT_EQ(sim.next_event_time(), -1);
}

TEST(NextEventTime, ReportsEarliestRunnable) {
  Simulator sim;
  sim.schedule_at(seconds(5), [] {});
  auto early = sim.schedule_at(seconds(2), [] {});
  EXPECT_EQ(sim.next_event_time(), seconds(2));
  early.cancel();
  EXPECT_EQ(sim.next_event_time(), seconds(5));
}

TEST(NextEventTime, AdvancesAsEventsFire) {
  Simulator sim;
  sim.schedule_at(seconds(1), [] {});
  sim.schedule_at(seconds(3), [] {});
  sim.step();
  EXPECT_EQ(sim.next_event_time(), seconds(3));
  sim.step();
  EXPECT_EQ(sim.next_event_time(), -1);
}

}  // namespace
}  // namespace dyrs::sim
