#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/units.h"

namespace dyrs::sim {
namespace {

TEST(Simulator, StartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), 0);
  EXPECT_TRUE(sim.idle());
}

TEST(Simulator, EventsFireInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(seconds(3), [&] { order.push_back(3); });
  sim.schedule_at(seconds(1), [&] { order.push_back(1); });
  sim.schedule_at(seconds(2), [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), seconds(3));
}

TEST(Simulator, SameTimeEventsFireInScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.schedule_at(seconds(1), [&order, i] { order.push_back(i); });
  }
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, ScheduleAfterUsesNow) {
  Simulator sim;
  SimTime fired = -1;
  sim.schedule_after(seconds(2), [&] {
    sim.schedule_after(seconds(3), [&] { fired = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(fired, seconds(5));
}

TEST(Simulator, SchedulingInPastThrows) {
  Simulator sim;
  sim.schedule_at(seconds(1), [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(0, [] {}), CheckError);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool ran = false;
  auto h = sim.schedule_after(seconds(1), [&] { ran = true; });
  EXPECT_TRUE(h.pending());
  h.cancel();
  EXPECT_FALSE(h.pending());
  sim.run();
  EXPECT_FALSE(ran);
}

TEST(Simulator, CancelAfterFireIsSafe) {
  Simulator sim;
  auto h = sim.schedule_after(seconds(1), [] {});
  sim.run();
  EXPECT_FALSE(h.pending());
  h.cancel();  // no effect, no crash
}

TEST(Simulator, RunUntilAdvancesClockExactly) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(seconds(1), [&] { ++fired; });
  sim.schedule_at(seconds(5), [&] { ++fired; });
  sim.run_until(seconds(3));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), seconds(3));
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, RunUntilIncludesBoundaryEvents) {
  Simulator sim;
  bool ran = false;
  sim.schedule_at(seconds(3), [&] { ran = true; });
  sim.run_until(seconds(3));
  EXPECT_TRUE(ran);
}

TEST(Simulator, EveryRepeatsUntilCancelled) {
  Simulator sim;
  int count = 0;
  auto h = sim.every(seconds(1), [&] { ++count; });
  sim.run_until(seconds(5) + 1);
  EXPECT_EQ(count, 5);
  h.cancel();
  sim.run_until(seconds(10));
  EXPECT_EQ(count, 5);
  EXPECT_TRUE(sim.idle());
}

TEST(Simulator, EveryCancelFromInsideCallback) {
  Simulator sim;
  int count = 0;
  EventHandle h;
  h = sim.every(seconds(1), [&] {
    if (++count == 3) h.cancel();
  });
  sim.run();
  EXPECT_EQ(count, 3);
}

TEST(Simulator, StepReturnsFalseWhenIdle) {
  Simulator sim;
  EXPECT_FALSE(sim.step());
  sim.schedule_after(1, [] {});
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
}

TEST(Simulator, ReentrantSchedulingFromEvents) {
  // An event chain that schedules its successor; exercises the common
  // heartbeat pattern.
  Simulator sim;
  int hops = 0;
  std::function<void()> hop = [&] {
    if (++hops < 100) sim.schedule_after(milliseconds(10), hop);
  };
  sim.schedule_after(0, hop);
  sim.run();
  EXPECT_EQ(hops, 100);
  EXPECT_EQ(sim.now(), milliseconds(10) * 99);
}

TEST(Simulator, EventsExecutedCounter) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) sim.schedule_after(i, [] {});
  sim.run();
  EXPECT_EQ(sim.events_executed(), 7u);
}

}  // namespace
}  // namespace dyrs::sim
