// Shared test harness: a small cluster with MiniDFS wired up.
#pragma once

#include <memory>
#include <vector>

#include "cluster/cluster.h"
#include "dfs/client.h"
#include "dfs/heartbeat.h"
#include "dfs/namenode.h"
#include "sim/simulator.h"

namespace dyrs::testing {

struct MiniDfs {
  struct Options {
    int num_nodes = 4;
    Rate disk_bw = mib_per_sec(100);
    double seek_alpha = 0.0;  // exact arithmetic in tests unless opted in
    int replication = 3;
    Bytes block_size = mib(64);
    Bytes memory = gib(8);
    Bytes ssd = gib(512);
    std::uint64_t placement_seed = 1;
    std::unique_ptr<dfs::PlacementPolicy> placement;  // default: random
  };

  MiniDfs() : MiniDfs(Options{}) {}

  explicit MiniDfs(Options o) {
    cluster = std::make_unique<cluster::Cluster>(
        sim, cluster::Cluster::Options{
                 .num_nodes = o.num_nodes,
                 .node = {.disk = {.name = "disk", .bandwidth = o.disk_bw,
                                   .seek_alpha = o.seek_alpha},
                          .ssd = {.capacity = o.ssd,
                                  .read_bandwidth = mib_per_sec(500)},
                          .memory = {.capacity = o.memory,
                                     .read_bandwidth = gib_per_sec(25)},
                          .nic_bandwidth = gbit_per_sec(10)},
                 .per_node = nullptr});
    namenode = std::make_unique<dfs::NameNode>(
        sim,
        dfs::NameNode::Options{.block_size = o.block_size,
                               .replication = o.replication,
                               .heartbeat_interval = seconds(1),
                               .heartbeat_miss_limit = 3,
                               .placement_seed = o.placement_seed},
        std::move(o.placement));
    for (NodeId id : cluster->node_ids()) {
      datanodes.push_back(std::make_unique<dfs::DataNode>(cluster->node(id)));
      namenode->register_datanode(datanodes.back().get());
    }
    std::vector<dfs::DataNode*> dns;
    for (auto& dn : datanodes) dns.push_back(dn.get());
    heartbeats = std::make_unique<dfs::HeartbeatDriver>(sim, *namenode, dns);
    client = std::make_unique<dfs::DFSClient>(*cluster, *namenode, /*seed=*/5);
  }

  sim::Simulator sim;
  std::unique_ptr<cluster::Cluster> cluster;
  std::unique_ptr<dfs::NameNode> namenode;
  std::vector<std::unique_ptr<dfs::DataNode>> datanodes;
  std::unique_ptr<dfs::HeartbeatDriver> heartbeats;
  std::unique_ptr<dfs::DFSClient> client;
};

}  // namespace dyrs::testing
