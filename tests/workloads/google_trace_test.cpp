#include "workloads/google_trace.h"

#include <gtest/gtest.h>

namespace dyrs::wl {
namespace {

GoogleTraceConfig quick_config() {
  GoogleTraceConfig c;
  c.num_servers = 20;
  c.duration = hours(6);
  c.num_jobs = 3000;
  return c;
}

TEST(GoogleTrace, Deterministic) {
  auto a = GoogleTrace::generate(quick_config());
  auto b = GoogleTrace::generate(quick_config());
  ASSERT_EQ(a.tasks().size(), b.tasks().size());
  for (std::size_t i = 0; i < std::min<std::size_t>(50, a.tasks().size()); ++i) {
    EXPECT_EQ(a.tasks()[i].start, b.tasks()[i].start);
    EXPECT_EQ(a.tasks()[i].server, b.tasks()[i].server);
  }
}

TEST(GoogleTrace, MeanUtilizationNearTarget) {
  auto c = quick_config();
  c.num_servers = 60;
  c.duration = hours(24);
  auto trace = GoogleTrace::generate(c);
  // Paper: mean disk utilization 3.1% over 24h. Allow generator noise.
  EXPECT_NEAR(trace.mean_utilization(), 0.031, 0.02);
}

TEST(GoogleTrace, MostSamplesUnderFourPercent) {
  // Paper Fig 3: for 80% of measurements utilization is under 4%.
  auto c = quick_config();
  c.num_servers = 40;
  c.duration = hours(24);
  auto trace = GoogleTrace::generate(c);
  auto samples = trace.utilization_samples(minutes(5));
  EXPECT_GT(samples.cdf_at(0.04), 0.70);
}

TEST(GoogleTrace, NodesAreHeterogeneous) {
  // Fig 1: some nodes are consistently much busier than others.
  auto c = quick_config();
  c.duration = hours(24);
  auto trace = GoogleTrace::generate(c);
  double lo = 1e9, hi = 0.0;
  for (int s = 0; s < c.num_servers; ++s) {
    const double u = trace.utilization_series(s).step_mean(0, c.duration);
    lo = std::min(lo, u);
    hi = std::max(hi, u);
  }
  EXPECT_GT(hi, lo * 5.0) << "expected >5x spread across nodes";
}

TEST(GoogleTrace, UtilizationVariesOverTime) {
  auto c = quick_config();
  c.duration = hours(24);
  auto trace = GoogleTrace::generate(c);
  // Find the busiest node and check its 5-min buckets are not flat.
  int busiest = 0;
  double best = -1;
  for (int s = 0; s < c.num_servers; ++s) {
    const double u = trace.utilization_series(s).step_mean(0, c.duration);
    if (u > best) {
      best = u;
      busiest = s;
    }
  }
  auto buckets = trace.node_utilization(busiest, minutes(5));
  double lo = 1e9, hi = 0.0;
  for (const auto& b : buckets) {
    lo = std::min(lo, b.value);
    hi = std::max(hi, b.value);
  }
  EXPECT_GT(hi - lo, 0.005);
}

TEST(GoogleTrace, UtilizationBounded) {
  auto trace = GoogleTrace::generate(quick_config());
  auto samples = trace.utilization_samples(minutes(5));
  EXPECT_GE(samples.min(), 0.0);
  EXPECT_LE(samples.max(), 1.0);
}

TEST(GoogleTrace, LeadTimeMeanNearTarget) {
  auto trace = GoogleTrace::generate(quick_config());
  // Paper: 8.8s mean lead-time.
  EXPECT_NEAR(trace.mean_lead_time_s(), 8.8, 0.8);
}

TEST(GoogleTrace, EightyOnePercentHaveSufficientLeadTime) {
  auto trace = GoogleTrace::generate(quick_config());
  // Paper Fig 2: 81% of jobs have lead-time >= read-time.
  EXPECT_NEAR(trace.fraction_with_sufficient_lead_time(), 0.81, 0.03);
}

TEST(GoogleTrace, RatioSamplesMatchFraction) {
  auto trace = GoogleTrace::generate(quick_config());
  auto ratios = trace.lead_to_read_ratios();
  const double frac_ge_one = 1.0 - ratios.cdf_at(1.0 - 1e-12);
  EXPECT_NEAR(frac_ge_one, trace.fraction_with_sufficient_lead_time(), 0.01);
}

}  // namespace
}  // namespace dyrs::wl
