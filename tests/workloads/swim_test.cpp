#include "workloads/swim.h"

#include <gtest/gtest.h>

namespace dyrs::wl {
namespace {

TEST(Swim, GeneratesRequestedJobCount) {
  auto wl = SwimWorkload::generate({});
  EXPECT_EQ(wl.jobs().size(), 200u);
}

TEST(Swim, TotalInputNearTarget) {
  auto wl = SwimWorkload::generate({});
  // Paper: 170GB cumulative input (clamping introduces small error).
  EXPECT_NEAR(to_gib(wl.total_input()), 170.0, 10.0);
}

TEST(Swim, HeavyTailedSizes) {
  auto wl = SwimWorkload::generate({});
  int small = 0;
  Bytes max_input = 0;
  for (const auto& job : wl.jobs()) {
    if (job.input < mib(64)) ++small;
    max_input = std::max(max_input, job.input);
  }
  // Paper: 85% of jobs read less than 64MB; the biggest reads up to 24GB.
  EXPECT_NEAR(static_cast<double>(small) / 200.0, 0.85, 0.06);
  EXPECT_EQ(max_input, gib(24));
}

TEST(Swim, LargeJobsCarryMostData) {
  auto wl = SwimWorkload::generate({});
  Bytes small_bytes = 0, large_bytes = 0;
  for (const auto& job : wl.jobs()) {
    if (job.input < mib(64)) {
      small_bytes += job.input;
    } else {
      large_bytes += job.input;
    }
  }
  EXPECT_GT(large_bytes, small_bytes * 10);
}

TEST(Swim, SubmissionTimesMonotone) {
  auto wl = SwimWorkload::generate({});
  SimTime prev = -1;
  for (const auto& job : wl.jobs()) {
    EXPECT_GE(job.submit_at, prev);
    prev = job.submit_at;
  }
}

TEST(Swim, InterarrivalCompressionShortensSpan) {
  SwimConfig fast;
  SwimConfig slow;
  slow.interarrival_scale = 1.0;
  const auto wf = SwimWorkload::generate(fast);
  const auto ws = SwimWorkload::generate(slow);
  EXPECT_LT(wf.last_submission() * 3, ws.last_submission());
}

TEST(Swim, Deterministic) {
  auto a = SwimWorkload::generate({});
  auto b = SwimWorkload::generate({});
  ASSERT_EQ(a.jobs().size(), b.jobs().size());
  for (std::size_t i = 0; i < a.jobs().size(); ++i) {
    EXPECT_EQ(a.jobs()[i].input, b.jobs()[i].input);
    EXPECT_EQ(a.jobs()[i].submit_at, b.jobs()[i].submit_at);
  }
}

TEST(Swim, ShuffleNeverExceedsInput) {
  auto wl = SwimWorkload::generate({});
  for (const auto& job : wl.jobs()) {
    EXPECT_LE(job.shuffle, job.input);
    EXPECT_GE(job.reducers, 0);
    if (job.shuffle == 0) EXPECT_EQ(job.reducers, 0);
  }
}

TEST(Swim, SizeBins) {
  EXPECT_EQ(SwimWorkload::bin_of(mib(10)), SwimWorkload::SizeBin::Small);
  EXPECT_EQ(SwimWorkload::bin_of(mib(64)), SwimWorkload::SizeBin::Medium);
  EXPECT_EQ(SwimWorkload::bin_of(mib(800)), SwimWorkload::SizeBin::Medium);
  EXPECT_EQ(SwimWorkload::bin_of(gib(1)), SwimWorkload::SizeBin::Large);
  EXPECT_EQ(SwimWorkload::bin_of(gib(24)), SwimWorkload::SizeBin::Large);
}

TEST(Swim, InstallCreatesFilesAndSubmits) {
  SwimConfig cfg;
  cfg.num_jobs = 10;
  cfg.total_input = gib(4);
  cfg.max_input = gib(2);
  auto wl = SwimWorkload::generate(cfg);

  exec::TestbedConfig tc;
  tc.num_nodes = 4;
  tc.block_size = mib(64);
  tc.scheme = exec::Scheme::Hdfs;
  exec::Testbed tb(tc);
  exec::JobSpec base;
  base.platform_overhead = seconds(2);
  auto ids = wl.install(tb, base);
  EXPECT_EQ(ids.size(), 10u);
  tb.run();
  EXPECT_EQ(tb.metrics().jobs().size(), 10u);
}

}  // namespace
}  // namespace dyrs::wl
