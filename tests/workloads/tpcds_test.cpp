#include "workloads/tpcds.h"

#include <gtest/gtest.h>

namespace dyrs::wl {
namespace {

exec::TestbedConfig quick_config(exec::Scheme scheme) {
  exec::TestbedConfig c;
  c.num_nodes = 4;
  c.disk_bandwidth = mib_per_sec(128);
  c.seek_alpha = 0.0;
  c.block_size = mib(128);
  c.scheme = scheme;
  c.master.slave.reference_block = mib(128);
  return c;
}

TEST(Tpcds, TenQueriesWithIncreasingSizes) {
  auto qs = tpcds_queries();
  ASSERT_EQ(qs.size(), 10u);
  for (std::size_t i = 1; i < qs.size(); ++i) {
    EXPECT_GE(qs[i].table_size, qs[i - 1].table_size);
  }
  EXPECT_EQ(qs.back().name, "q27");
}

TEST(Tpcds, ScaleMultipliesSizes) {
  auto base = tpcds_queries(1.0);
  auto half = tpcds_queries(0.5);
  for (std::size_t i = 0; i < base.size(); ++i) {
    EXPECT_NEAR(static_cast<double>(half[i].table_size),
                static_cast<double>(base[i].table_size) / 2.0,
                static_cast<double>(mib(1)));
  }
}

TEST(Tpcds, SingleQueryRunsAllStages) {
  exec::Testbed tb(quick_config(exec::Scheme::Hdfs));
  QueryRunner runner(tb);
  auto qs = tpcds_queries(0.1);  // small for test speed
  QueryResult result;
  bool done = false;
  runner.run(qs[0], [&](const QueryResult& r) {
    result = r;
    done = true;
  });
  tb.run();
  ASSERT_TRUE(done);
  EXPECT_GT(result.duration_s(), 0.0);
  // Two stages ran as two jobs.
  EXPECT_EQ(tb.metrics().jobs().size(), 2u);
  // Intermediate file was materialized.
  EXPECT_GT(tb.namenode().ns().file_count(), 1u);
}

TEST(Tpcds, StageChainShrinksData) {
  exec::Testbed tb(quick_config(exec::Scheme::Hdfs));
  QueryRunner runner(tb);
  auto qs = tpcds_queries(0.2);
  bool done = false;
  runner.run(qs[5], [&](const QueryResult&) { done = true; });
  tb.run();
  ASSERT_TRUE(done);
  const auto& jobs = tb.metrics().jobs();
  ASSERT_EQ(jobs.size(), 2u);
  EXPECT_LT(jobs[1].input_size, jobs[0].input_size / 4);
}

TEST(Tpcds, OnlyFirstStageMigrates) {
  exec::Testbed tb(quick_config(exec::Scheme::Dyrs));
  QueryRunner runner(tb);
  auto qs = tpcds_queries(0.1);
  bool done = false;
  runner.run(qs[0], [&](const QueryResult&) { done = true; });
  tb.run();
  ASSERT_TRUE(done);
  // Migrated bytes never exceed the table size (stage-2 intermediates are
  // not migrated).
  EXPECT_LE(tb.master()->bytes_migrated(),
            static_cast<double>(qs[0].table_size) + 1.0);
}

TEST(Tpcds, SuiteRunsSequentially) {
  exec::Testbed tb(quick_config(exec::Scheme::Hdfs));
  auto qs = tpcds_queries(0.05);
  qs.resize(3);
  exec::JobSpec base;
  base.platform_overhead = seconds(2);
  auto results = QueryRunner::run_suite(tb, qs, base);
  ASSERT_EQ(results.size(), 3u);
  for (std::size_t i = 1; i < results.size(); ++i) {
    EXPECT_GE(results[i].submitted, results[i - 1].finished);
  }
}

TEST(Tpcds, DyrsAcceleratesQueries) {
  // End-to-end sanity: with ample lead-time DYRS beats HDFS on the same
  // query. (The full Fig 4 comparison lives in the bench.)
  auto qs = tpcds_queries(0.2);
  double hdfs_s = 0, dyrs_s = 0;
  for (auto scheme : {exec::Scheme::Hdfs, exec::Scheme::Dyrs}) {
    exec::Testbed tb(quick_config(scheme));
    QueryRunner runner(tb);
    runner.base_spec.platform_overhead = seconds(8);
    bool done = false;
    QueryResult result;
    runner.run(qs[2], [&](const QueryResult& r) {
      result = r;
      done = true;
    });
    tb.run();
    ASSERT_TRUE(done);
    (scheme == exec::Scheme::Hdfs ? hdfs_s : dyrs_s) = result.duration_s();
  }
  EXPECT_LT(dyrs_s, hdfs_s);
}

}  // namespace
}  // namespace dyrs::wl
