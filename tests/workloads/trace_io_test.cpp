#include "workloads/trace_io.h"

#include <gtest/gtest.h>

#include <sstream>

#include "common/check.h"

namespace dyrs::wl {
namespace {

TEST(TraceIo, SplitCsvLineBasic) {
  auto cells = split_csv_line("a,b,c");
  ASSERT_EQ(cells.size(), 3u);
  EXPECT_EQ(cells[0], "a");
  EXPECT_EQ(cells[2], "c");
}

TEST(TraceIo, SplitCsvLineQuoted) {
  auto cells = split_csv_line("\"with,comma\",\"with\"\"quote\",plain");
  ASSERT_EQ(cells.size(), 3u);
  EXPECT_EQ(cells[0], "with,comma");
  EXPECT_EQ(cells[1], "with\"quote");
  EXPECT_EQ(cells[2], "plain");
}

TEST(TraceIo, SplitCsvLineEmptyCells) {
  auto cells = split_csv_line(",,");
  ASSERT_EQ(cells.size(), 3u);
  for (const auto& c : cells) EXPECT_TRUE(c.empty());
}

TEST(TraceIo, SwimRoundTrip) {
  auto workload = SwimWorkload::generate({});
  std::stringstream buffer;
  write_swim_csv(workload.jobs(), buffer);
  auto loaded = read_swim_csv(buffer);
  ASSERT_EQ(loaded.size(), workload.jobs().size());
  for (std::size_t i = 0; i < loaded.size(); ++i) {
    EXPECT_EQ(loaded[i].name, workload.jobs()[i].name);
    EXPECT_EQ(loaded[i].file, workload.jobs()[i].file);
    EXPECT_EQ(loaded[i].input, workload.jobs()[i].input);
    EXPECT_EQ(loaded[i].shuffle, workload.jobs()[i].shuffle);
    EXPECT_EQ(loaded[i].output, workload.jobs()[i].output);
    EXPECT_EQ(loaded[i].submit_at, workload.jobs()[i].submit_at);
    EXPECT_EQ(loaded[i].reducers, workload.jobs()[i].reducers);
  }
}

TEST(TraceIo, ReadRejectsMissingHeader) {
  std::stringstream buffer("job-0,/f,1,0,0,0,0\n");
  EXPECT_THROW(read_swim_csv(buffer), CheckError);
}

TEST(TraceIo, ReadRejectsWrongArity) {
  std::stringstream buffer("name,file,input,shuffle,output,submit_us,reducers\nx,/f,1,2\n");
  EXPECT_THROW(read_swim_csv(buffer), CheckError);
}

TEST(TraceIo, ReadRejectsNonNumeric) {
  std::stringstream buffer(
      "name,file,input,shuffle,output,submit_us,reducers\nx,/f,abc,0,0,0,0\n");
  EXPECT_THROW(read_swim_csv(buffer), CheckError);
}

TEST(TraceIo, ReadRejectsNonPositiveInput) {
  std::stringstream buffer(
      "name,file,input,shuffle,output,submit_us,reducers\nx,/f,0,0,0,0,0\n");
  EXPECT_THROW(read_swim_csv(buffer), CheckError);
}

TEST(TraceIo, ReadSkipsBlankLines) {
  std::stringstream buffer(
      "name,file,input,shuffle,output,submit_us,reducers\n\nx,/f,10,0,0,0,0\n\n");
  auto jobs = read_swim_csv(buffer);
  ASSERT_EQ(jobs.size(), 1u);
  EXPECT_EQ(jobs[0].input, 10);
}

TEST(TraceIo, JobMetricsCsvHasHeaderAndRows) {
  exec::Metrics metrics;
  exec::JobRecord j;
  j.id = JobId(0);
  j.name = "j0";
  j.input_size = mib(64);
  j.submitted = seconds(1);
  j.finished = seconds(11);
  metrics.add_job(j);
  std::stringstream buffer;
  write_job_metrics_csv(metrics, buffer);
  std::string header, row;
  ASSERT_TRUE(std::getline(buffer, header));
  ASSERT_TRUE(std::getline(buffer, row));
  EXPECT_NE(header.find("duration_s"), std::string::npos);
  EXPECT_NE(row.find("j0"), std::string::npos);
  EXPECT_NE(row.find("10"), std::string::npos);  // duration
}

TEST(TraceIo, TaskMetricsCsvHasMedium) {
  exec::Metrics metrics;
  exec::TaskRecord t;
  t.id = TaskId(3);
  t.job = JobId(1);
  t.phase = exec::TaskPhase::Map;
  t.node = NodeId(2);
  t.medium = dfs::ReadMedium::RemoteMemory;
  t.input = mib(64);
  t.started = 0;
  t.finished = seconds(2);
  metrics.add_task(t);
  std::stringstream buffer;
  write_task_metrics_csv(metrics, buffer);
  EXPECT_NE(buffer.str().find("remote-memory"), std::string::npos);
  EXPECT_NE(buffer.str().find("map"), std::string::npos);
}

}  // namespace
}  // namespace dyrs::wl
